//! Batched SoA evaluation kernels: M2P lane groups and P2P source spans.
//!
//! The scalar kernels in [`expansion`](crate::expansion) evaluate one
//! (target, node) interaction at a time, interleaved with tree traversal.
//! This module provides the dense "execute" half of a two-phase evaluator:
//! a list compiler (in `mbt-treecode`) turns traversals into flat task
//! lists, and these kernels burn through the lists in lane groups whose
//! width is the **dispatched vector width** of the running CPU
//! ([`crate::simd::m2p_lanes`]: 8×f64 on AVX-512, 4×f64 otherwise). Every
//! kernel is monomorphized over the lane count `L` and written against the
//! [`F64Lanes`]/[`F32Lanes`] types from [`crate::simd`], whose elementwise
//! ops are the exact shape LLVM lowers to full-width vector registers; the
//! public entry points run the monomorphized body through
//! [`crate::simd::dispatch`] so it is compiled with the instruction set the
//! CPU was probed to support. [`M2P_LANES`] remains the baseline
//! (scalar-fallback) group width; the P2P span kernels instead run a
//! *fixed* logical width ([`P2P_LANES`]/[`P2P_LANES_F32`]) at every level
//! so their summation order never depends on the dispatched level.
//!
//! # Determinism contract
//!
//! Per lane, the group kernels run the **same Legendre recurrences and
//! multiply/accumulate association** as their scalar counterparts
//! ([`ExpansionRef::potential_at_degree_with`](crate::ExpansionRef::potential_at_degree_with)
//! etc.), but convert the observation offset to spherical form
//! *algebraically* — `cos θ = dz/r`, `sin θ = r_xy/r`, `e^{iφ} =
//! (dx + i·dy)/r_xy` — instead of round-tripping through
//! `acos`/`atan2`/`sin_cos`. The quantities are mathematically identical
//! and agree to ULP precision (the kernel tests pin ≤ 1e-13 relative per
//! lane), but the serial libm calls that dominate small-degree setup are
//! replaced by straight-line `sqrt`/`div` the vectorizer packs across
//! lanes. Lanes are arithmetically independent and the lane-`l` operation
//! sequence does not depend on `L`, so the same task produces bit-identical
//! output in a 4-wide and an 8-wide group — dispatching a wider width on
//! wider hardware cannot change results (pinned by
//! `lane_width_does_not_change_values`). Together with the compiled mode's
//! documented reassociation (per-interaction partials are summed in
//! degree-bucket order), the compiled/scalar divergence stays well below
//! 1e-12 relative for the workloads the treecode serves.
//!
//! The `_f32` P2P kernels are the one deliberate exception: they evaluate
//! the near field in single precision over an f32 mirror of the particle
//! SoA and widen only the final reduction. Their use is gated by the
//! Theorem 1/2 budget test in [`crate::bounds::f32_near_admissible`] — the
//! caller opts in only when the far-field truncation error already
//! dominates the f32 near-field roundoff.
//!
//! # Layout
//!
//! Lane-major triangular tables: entry `(n, m)` of lane `l` lives at
//! `tri_index(n, m) * L + l`, so each recurrence step is one wide-register
//! op per table row (see DESIGN.md §10/§12 for the inspection notes).

use mbt_geometry::Vec3;

use crate::complex::Complex;
use crate::simd::{self, F32Lanes, F64Lanes};
use crate::tables::{tri_index, tri_len, Tables};

/// Baseline (scalar-fallback) targets per M2P group and the default lane
/// count of [`M2pGroup`]. The dispatched width — what the list executor
/// actually assembles groups with — is [`crate::simd::m2p_lanes`], which
/// widens to 8 on AVX-512.
pub const M2P_LANES: usize = 4;

/// Logical accumulator lanes of the f64 P2P span kernels — fixed at the
/// widest register width (AVX-512, 8×f64) for **every** SIMD level.
/// Narrower levels execute the identical 8-lane arithmetic in split
/// registers (two ymm on AVX2), so the summation order — and therefore
/// every bit of the result — is independent of the dispatched level;
/// [`crate::simd::p2p_lanes_f64`] reports only the hardware register
/// width the level lowers to. Independent per-lane partial sums are what
/// permit packed adds in the first place: LLVM will not reassociate a
/// single serial `f64` reduction on its own.
pub const P2P_LANES: usize = 8;

/// Logical accumulator lanes of the f32 P2P span kernels (one AVX-512
/// register of f32, two ymm on AVX2) — level-invariant exactly like
/// [`P2P_LANES`].
pub const P2P_LANES_F32: usize = 16;

/// One group of up to `L` same-degree M2P tasks: per lane an expansion
/// (center + triangular `m ≥ 0` coefficient span) and an observation
/// point. Callers pad short groups by repeating a valid lane and ignore
/// the padded outputs — lanes are arithmetically independent, so a padded
/// tail lane cannot perturb the live lanes (pinned by
/// `padded_tail_lanes_never_contribute`).
#[derive(Debug, Clone, Copy)]
pub struct M2pGroup<'a, const L: usize = M2P_LANES> {
    /// Expansion centers, one per lane.
    pub centers: [Vec3; L],
    /// Observation points, one per lane.
    pub points: [Vec3; L],
    /// Coefficient spans; each must hold at least `tri_len(degree)`
    /// entries for the degree the workspace is prepared to.
    pub coeffs: [&'a [Complex]; L],
}

/// Reusable lane-major scratch for the batched M2P kernels: the shared
/// normalization table for the current degree bucket plus per-lane
/// Legendre and accumulator arrays. One `BatchWorkspace` lives per
/// evaluation chunk; [`BatchWorkspace::prepare_degree`] is called once per
/// degree bucket, which is what amortizes table setup across every task
/// in the bucket.
#[derive(Debug)]
pub struct BatchWorkspace {
    degree: usize,
    /// Lane stride the buffers are sized for (≥ any kernel's `L`).
    lanes: usize,
    /// `norm(n, m)` for the prepared degree, indexed by `tri_index` —
    /// shared across lanes (it depends only on `(n, m)`).
    norm: Vec<f64>,
    /// Lane-major `P_n^m(cos θ)`.
    leg_p: Vec<f64>,
    /// Lane-major `P_n^m / sin θ` (`m ≥ 1`; `m = 0` entries unused).
    leg_q: Vec<f64>,
    /// Lane-major `dP_n^m/dθ`.
    leg_d: Vec<f64>,
    /// Lane-major per-degree partial sums (potential).
    acc_pot: Vec<f64>,
    /// Lane-major per-degree partial sums (θ-derivative).
    acc_dth: Vec<f64>,
    /// Lane-major per-degree partial sums (φ-derivative).
    acc_dph: Vec<f64>,
}

impl Default for BatchWorkspace {
    fn default() -> Self {
        BatchWorkspace::new()
    }
}

impl BatchWorkspace {
    /// An empty workspace; call [`BatchWorkspace::prepare_degree`] before
    /// running a group kernel.
    #[must_use]
    pub fn new() -> BatchWorkspace {
        BatchWorkspace {
            degree: 0,
            lanes: 0,
            norm: Vec::new(), // lint: allow(alloc, workspace construction, once per chunk)
            leg_p: Vec::new(), // lint: allow(alloc, workspace construction, once per chunk)
            leg_q: Vec::new(), // lint: allow(alloc, workspace construction, once per chunk)
            leg_d: Vec::new(), // lint: allow(alloc, workspace construction, once per chunk)
            acc_pot: Vec::new(), // lint: allow(alloc, workspace construction, once per chunk)
            acc_dth: Vec::new(), // lint: allow(alloc, workspace construction, once per chunk)
            acc_dph: Vec::new(), // lint: allow(alloc, workspace construction, once per chunk)
        }
    }

    /// Sizes the lane buffers for `degree` at the **dispatched** lane
    /// width ([`crate::simd::m2p_lanes`]) and fills the normalization
    /// table — once per degree bucket, not per task.
    pub fn prepare_degree(&mut self, degree: usize) {
        self.prepare_degree_lanes(degree, simd::m2p_lanes());
    }

    /// Sizes the lane buffers for `degree` at an explicit lane stride
    /// (the `L` the caller will run kernels with). Buffers grow
    /// monotonically, so a workspace cycled through ascending buckets
    /// allocates only on the first visit to each high-water mark.
    pub fn prepare_degree_lanes(&mut self, degree: usize, lanes: usize) {
        let len = tri_len(degree);
        if self.leg_p.len() < len * lanes {
            self.leg_p.resize(len * lanes, 0.0);
            self.leg_q.resize(len * lanes, 0.0);
            self.leg_d.resize(len * lanes, 0.0);
        }
        if self.norm.len() < len {
            self.norm.resize(len, 0.0);
        }
        if self.acc_pot.len() < (degree + 1) * lanes {
            self.acc_pot.resize((degree + 1) * lanes, 0.0);
            self.acc_dth.resize((degree + 1) * lanes, 0.0);
            self.acc_dph.resize((degree + 1) * lanes, 0.0);
        }
        let t = Tables::get();
        for n in 0..=degree {
            for m in 0..=n {
                self.norm[tri_index(n, m)] = t.norm(n, m as i64);
            }
        }
        self.degree = degree;
        self.lanes = self.lanes.max(lanes);
    }

    /// The degree the workspace is currently prepared for.
    #[inline]
    #[must_use]
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// The lane stride the buffers are sized for.
    #[inline]
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes
    }
}

/// Lane-major `P_n^m` via the same recurrences as
/// [`Legendre::recompute`](crate::Legendre) — identical operation order
/// per lane, so each lane's values match the scalar table bit for bit.
#[inline(always)]
fn legendre_p_lanes<const L: usize>(degree: usize, x: F64Lanes<L>, s: F64Lanes<L>, p: &mut [f64]) {
    F64Lanes::<L>::splat(1.0).store(&mut p[tri_index(0, 0) * L..]);
    let mut pmm = F64Lanes::<L>::splat(1.0);
    for m in 1..=degree {
        let df = F64Lanes::splat((2 * m - 1) as f64);
        pmm = pmm * (df * s);
        pmm.store(&mut p[tri_index(m, m) * L..]);
    }
    for m in 0..degree {
        let c = F64Lanes::splat((2 * m + 1) as f64);
        let dst = tri_index(m + 1, m) * L;
        let src = tri_index(m, m) * L;
        let f = x * c;
        (f * F64Lanes::load(&p[src..])).store(&mut p[dst..]);
    }
    for n in 2..=degree {
        let a_c = F64Lanes::splat((2 * n - 1) as f64);
        for m in 0..=(n - 2) {
            let b = F64Lanes::splat((n + m - 1) as f64);
            let c = F64Lanes::splat((n - m) as f64);
            let i0 = tri_index(n, m) * L;
            let i1 = tri_index(n - 1, m) * L;
            let i2 = tri_index(n - 2, m) * L;
            let a = x * a_c;
            let v = (a * F64Lanes::load(&p[i1..]) - b * F64Lanes::load(&p[i2..])) / c;
            v.store(&mut p[i0..]);
        }
    }
}

/// Lane-major evaluation of all three Legendre families (`P`, `P/sin θ`,
/// `dP/dθ`), mirroring the scalar recurrences operation for operation.
#[inline(always)]
fn legendre_pqd_lanes<const L: usize>(
    degree: usize,
    x: F64Lanes<L>,
    s: F64Lanes<L>,
    p: &mut [f64],
    q: &mut [f64],
    d: &mut [f64],
) {
    legendre_p_lanes(degree, x, s, p);
    // diagonal seeds for S_m^m = (2m-1)!! sinθ^{m-1}
    let mut smm = F64Lanes::<L>::splat(1.0);
    for m in 1..=degree {
        let df = F64Lanes::splat((2 * m - 1) as f64);
        smm = if m == 1 { df } else { smm * df * s };
        smm.store(&mut q[tri_index(m, m) * L..]);
    }
    for m in 1..degree {
        let c = F64Lanes::splat((2 * m + 1) as f64);
        let dst = tri_index(m + 1, m) * L;
        let src = tri_index(m, m) * L;
        let f = x * c;
        (f * F64Lanes::load(&q[src..])).store(&mut q[dst..]);
    }
    for n in 2..=degree {
        let a_c = F64Lanes::splat((2 * n - 1) as f64);
        for m in 1..=(n - 2) {
            let b = F64Lanes::splat((n + m - 1) as f64);
            let c = F64Lanes::splat((n - m) as f64);
            let i0 = tri_index(n, m) * L;
            let i1 = tri_index(n - 1, m) * L;
            let i2 = tri_index(n - 2, m) * L;
            let a = x * a_c;
            let v = (a * F64Lanes::load(&q[i1..]) - b * F64Lanes::load(&q[i2..])) / c;
            v.store(&mut q[i0..]);
        }
    }
    // θ-derivatives
    for n in 0..=degree {
        let row0 = tri_index(n, 0) * L;
        if n >= 1 {
            let p1 = tri_index(n, 1) * L;
            (-F64Lanes::<L>::load(&p[p1..])).store(&mut d[row0..]);
        } else {
            F64Lanes::<L>::splat(0.0).store(&mut d[row0..]);
        }
        for m in 1..=n {
            let i0 = tri_index(n, m) * L;
            let pv = if n >= 1 && m < n {
                F64Lanes::<L>::load(&q[tri_index(n - 1, m) * L..])
            } else {
                F64Lanes::splat(0.0)
            };
            let nv = F64Lanes::splat(n as f64);
            let nm = F64Lanes::splat((n + m) as f64);
            (nv * x * F64Lanes::load(&q[i0..]) - nm * pv).store(&mut d[i0..]);
        }
    }
}

/// Algebraic spherical setup shared by the M2P kernels: radius inverse,
/// `cos θ`, `sin θ`, and `e^{iφ}` per lane, with no `acos`/`atan2`.
/// `r_xy = 0` (z-axis) pins `e^{iφ} = 1`, matching
/// `Spherical::from_cartesian`'s `φ = 0`.
#[inline(always)]
#[allow(clippy::type_complexity)]
fn spherical_setup<const L: usize>(
    centers: &[Vec3; L],
    points: &[Vec3; L],
) -> (
    F64Lanes<L>,
    F64Lanes<L>,
    F64Lanes<L>,
    F64Lanes<L>,
    F64Lanes<L>,
) {
    let dx = F64Lanes::<L>::from_fn(|l| points[l].x - centers[l].x);
    let dy = F64Lanes::<L>::from_fn(|l| points[l].y - centers[l].y);
    let dz = F64Lanes::<L>::from_fn(|l| points[l].z - centers[l].z);
    let rxy2 = dx * dx + dy * dy;
    let r = (rxy2 + dz * dz).sqrt();
    let rxy = rxy2.sqrt();
    for l in 0..L {
        debug_assert!(r.0[l] > 0.0, "evaluation at the expansion center");
    }
    let inv_r = F64Lanes::splat(1.0) / r;
    let cos_t = dz / r;
    let sin_t = rxy / r;
    let e1_re = F64Lanes::from_fn(|l| {
        // lint: allow(float_cmp, exact z-axis: φ convention pinned to 0)
        if rxy.0[l] == 0.0 {
            1.0
        } else {
            dx.0[l] / rxy.0[l]
        }
    });
    let e1_im = F64Lanes::from_fn(|l| {
        // lint: allow(float_cmp, exact z-axis: φ convention pinned to 0)
        if rxy.0[l] == 0.0 {
            0.0
        } else {
            dy.0[l] / rxy.0[l]
        }
    });
    (inv_r, cos_t, sin_t, e1_re, e1_im)
}

/// Evaluates one group of same-degree M2P tasks (the degree the workspace
/// was last [`prepare_degree`](BatchWorkspace::prepare_degree)'d for).
/// Lane `l` of the result matches
/// [`ExpansionRef::potential_at_degree_with`](crate::ExpansionRef::potential_at_degree_with)
/// for that lane's (expansion, point, degree) to ULP precision, and does
/// not depend on `L` (see the module-level determinism contract). The
/// workspace must have been prepared with a lane stride ≥ `L`.
#[must_use]
pub fn m2p_potential_group<const L: usize>(
    g: &M2pGroup<'_, L>,
    ws: &mut BatchWorkspace,
) -> [f64; L] {
    simd::dispatch(|| {
        m2p_potential_group_core(
            &g.centers,
            &g.points,
            &|ti| {
                (
                    F64Lanes::<L>::from_fn(|l| g.coeffs[l][ti].re),
                    F64Lanes::<L>::from_fn(|l| g.coeffs[l][ti].im),
                )
            },
            ws,
        )
    })
}

/// [`m2p_potential_group`] for `L` tasks that share one expansion: the
/// per-term coefficient becomes a single broadcast instead of an
/// `L`-pointer gather, which roughly halves the inner-loop cost. The
/// list executor uses this for the same-node task runs the chunk
/// compiler's accept-all classification emits. A broadcast lane holds
/// the same value the gather would have produced, so lane `l` is
/// bit-identical to the general kernel's (pinned by
/// `uniform_group_matches_gather_group`).
#[must_use]
pub fn m2p_potential_group_uniform<const L: usize>(
    center: Vec3,
    coeffs: &[Complex],
    points: &[Vec3; L],
    ws: &mut BatchWorkspace,
) -> [f64; L] {
    let centers = [center; L];
    simd::dispatch(|| {
        m2p_potential_group_core(
            &centers,
            points,
            &|ti| {
                (
                    F64Lanes::<L>::splat(coeffs[ti].re),
                    F64Lanes::<L>::splat(coeffs[ti].im),
                )
            },
            ws,
        )
    })
}

#[inline(always)]
fn m2p_potential_group_core<const L: usize>(
    centers: &[Vec3; L],
    points: &[Vec3; L],
    coeff: &impl Fn(usize) -> (F64Lanes<L>, F64Lanes<L>),
    ws: &mut BatchWorkspace,
) -> [f64; L] {
    let degree = ws.degree;
    debug_assert!(ws.lanes >= L, "workspace prepared narrower than kernel");
    let (inv_r, cos_t, sin_t, e1_re, e1_im) = spherical_setup(centers, points);
    legendre_p_lanes(degree, cos_t, sin_t, &mut ws.leg_p);

    let acc = &mut ws.acc_pot[..(degree + 1) * L];
    acc.fill(0.0);
    let norm = &ws.norm;
    let leg = &ws.leg_p;
    let mut eim_re = F64Lanes::<L>::splat(1.0);
    let mut eim_im = F64Lanes::<L>::splat(0.0);
    for m in 0..=degree {
        let w = if m == 0 { 1.0 } else { 2.0 };
        for n in m..=degree {
            let ti = tri_index(n, m);
            let nr = F64Lanes::splat(norm[ti]);
            let row = n * L;
            let (c_re, c_im) = coeff(ti);
            let rot = c_re * eim_re - c_im * eim_im;
            let term = F64Lanes::splat(w) * rot * nr * F64Lanes::load(&leg[ti * L..]);
            (F64Lanes::load(&acc[row..]) + term).store(&mut acc[row..]);
        }
        let re = eim_re * e1_re - eim_im * e1_im;
        let im = eim_re * e1_im + eim_im * e1_re;
        eim_re = re;
        eim_im = im;
    }
    let mut phi = F64Lanes::<L>::splat(0.0);
    let mut rpow = inv_r;
    for n in 0..=degree {
        phi += F64Lanes::load(&acc[n * L..]) * rpow;
        rpow = rpow * inv_r;
    }
    phi.0
}

/// Potential-and-gradient analogue of [`m2p_potential_group`]; lane `l`
/// matches
/// [`ExpansionRef::field_at_degree_with`](crate::ExpansionRef::field_at_degree_with)
/// to ULP precision and does not depend on `L` (see the module-level
/// determinism contract).
#[must_use]
pub fn m2p_field_group<const L: usize>(
    g: &M2pGroup<'_, L>,
    ws: &mut BatchWorkspace,
) -> ([f64; L], [Vec3; L]) {
    simd::dispatch(|| {
        m2p_field_group_core(
            &g.centers,
            &g.points,
            &|ti| {
                (
                    F64Lanes::<L>::from_fn(|l| g.coeffs[l][ti].re),
                    F64Lanes::<L>::from_fn(|l| g.coeffs[l][ti].im),
                )
            },
            ws,
        )
    })
}

/// Shared-expansion variant of [`m2p_field_group`]; see
/// [`m2p_potential_group_uniform`] for the broadcast-vs-gather contract.
#[must_use]
pub fn m2p_field_group_uniform<const L: usize>(
    center: Vec3,
    coeffs: &[Complex],
    points: &[Vec3; L],
    ws: &mut BatchWorkspace,
) -> ([f64; L], [Vec3; L]) {
    let centers = [center; L];
    simd::dispatch(|| {
        m2p_field_group_core(
            &centers,
            points,
            &|ti| {
                (
                    F64Lanes::<L>::splat(coeffs[ti].re),
                    F64Lanes::<L>::splat(coeffs[ti].im),
                )
            },
            ws,
        )
    })
}

#[inline(always)]
fn m2p_field_group_core<const L: usize>(
    centers: &[Vec3; L],
    points: &[Vec3; L],
    coeff: &impl Fn(usize) -> (F64Lanes<L>, F64Lanes<L>),
    ws: &mut BatchWorkspace,
) -> ([f64; L], [Vec3; L]) {
    let degree = ws.degree;
    debug_assert!(ws.lanes >= L, "workspace prepared narrower than kernel");
    // cos φ + i sin φ doubles as the in-plane unit vector of the setup.
    let (inv_r, cos_t, sin_t, cos_p, sin_p) = spherical_setup(centers, points);
    {
        let BatchWorkspace {
            leg_p,
            leg_q,
            leg_d,
            ..
        } = ws;
        legendre_pqd_lanes(degree, cos_t, sin_t, leg_p, leg_q, leg_d);
    }

    let rows = (degree + 1) * L;
    let BatchWorkspace {
        norm,
        leg_p,
        leg_q,
        leg_d,
        acc_pot,
        acc_dth,
        acc_dph,
        ..
    } = ws;
    let pot = &mut acc_pot[..rows];
    let dth = &mut acc_dth[..rows];
    let dph = &mut acc_dph[..rows];
    pot.fill(0.0);
    dth.fill(0.0);
    dph.fill(0.0);
    // e1 = cos φ + i sin φ, as in the scalar field kernel
    let mut eim_re = F64Lanes::<L>::splat(1.0);
    let mut eim_im = F64Lanes::<L>::splat(0.0);
    for m in 0..=degree {
        let w = if m == 0 { 1.0 } else { 2.0 };
        for n in m..=degree {
            let ti = tri_index(n, m);
            let nr = F64Lanes::splat(norm[ti]);
            let row = n * L;
            let lrow = ti * L;
            let (c_re, c_im) = coeff(ti);
            let rot_re = c_re * eim_re - c_im * eim_im;
            let wnr = F64Lanes::splat(w) * rot_re * nr;
            (F64Lanes::load(&pot[row..]) + wnr * F64Lanes::load(&leg_p[lrow..]))
                .store(&mut pot[row..]);
            (F64Lanes::load(&dth[row..]) + wnr * F64Lanes::load(&leg_d[lrow..]))
                .store(&mut dth[row..]);
            if m >= 1 {
                let rot_im = c_re * eim_im + c_im * eim_re;
                let t = F64Lanes::splat(-2.0 * m as f64) * rot_im * nr;
                (F64Lanes::load(&dph[row..]) + t * F64Lanes::load(&leg_q[lrow..]))
                    .store(&mut dph[row..]);
            }
        }
        let re = eim_re * cos_p - eim_im * sin_p;
        let im = eim_re * sin_p + eim_im * cos_p;
        eim_re = re;
        eim_im = im;
    }
    let mut phi = F64Lanes::<L>::splat(0.0);
    let mut g_r = F64Lanes::<L>::splat(0.0);
    let mut g_t = F64Lanes::<L>::splat(0.0);
    let mut g_p = F64Lanes::<L>::splat(0.0);
    let mut rpow1 = inv_r;
    for n in 0..=degree {
        let rpow2 = rpow1 * inv_r;
        let potv = F64Lanes::<L>::load(&pot[n * L..]);
        phi += potv * rpow1;
        g_r += F64Lanes::splat(-((n + 1) as f64)) * potv * rpow2;
        g_t += F64Lanes::<L>::load(&dth[n * L..]) * rpow2;
        g_p += F64Lanes::<L>::load(&dph[n * L..]) * rpow2;
        rpow1 = rpow2;
    }
    let mut grad_out = [Vec3::ZERO; L];
    for (l, out) in grad_out.iter_mut().enumerate() {
        let e_r = Vec3::new(sin_t.0[l] * cos_p.0[l], sin_t.0[l] * sin_p.0[l], cos_t.0[l]);
        let e_t = Vec3::new(
            cos_t.0[l] * cos_p.0[l],
            cos_t.0[l] * sin_p.0[l],
            -sin_t.0[l],
        );
        let e_p = Vec3::new(-sin_p.0[l], cos_p.0[l], 0.0);
        *out = e_r * g_r.0[l] + e_t * g_t.0[l] + e_p * g_p.0[l];
    }
    (phi.0, grad_out)
}

/// Near-field potential over one SoA source span, **without** a
/// zero-distance guard: the caller must have excluded the self particle
/// (the list compiler splits spans around it). Each pair performs the
/// same arithmetic as the scalar near-field loop; only the summation
/// order differs ([`P2P_LANES`] independent accumulators at every
/// dispatch level, the tail padded with zero-charge lanes).
#[must_use]
pub fn p2p_potential_span(
    xs: &[f64],
    ys: &[f64],
    zs: &[f64],
    qs: &[f64],
    t: Vec3,
    eps2: f64,
) -> f64 {
    simd::dispatch(|| p2p_potential_span_impl::<P2P_LANES>(xs, ys, zs, qs, t, eps2))
}

#[inline(always)]
fn p2p_potential_span_impl<const L: usize>(
    xs: &[f64],
    ys: &[f64],
    zs: &[f64],
    qs: &[f64],
    t: Vec3,
    eps2: f64,
) -> f64 {
    debug_assert!(xs.len() == ys.len() && ys.len() == zs.len() && zs.len() == qs.len());
    // Hoisted into lane splats: `t` is passed indirectly (three f64s), and
    // field loads inside the loop defeat the vectorizer at opt-level 3.
    let tx = F64Lanes::<L>::splat(t.x);
    let ty = F64Lanes::<L>::splat(t.y);
    let tz = F64Lanes::<L>::splat(t.z);
    let ev = F64Lanes::<L>::splat(eps2);
    let main = xs.len() - xs.len() % L;
    let mut acc = F64Lanes::<L>::splat(0.0);
    for (((xc, yc), zc), qc) in xs[..main]
        .chunks_exact(L)
        .zip(ys[..main].chunks_exact(L))
        .zip(zs[..main].chunks_exact(L))
        .zip(qs[..main].chunks_exact(L))
    {
        let dx = F64Lanes::<L>::load(xc) - tx;
        let dy = F64Lanes::<L>::load(yc) - ty;
        let dz = F64Lanes::<L>::load(zc) - tz;
        let r2 = dx * dx + dy * dy + dz * dz + ev;
        acc += F64Lanes::load(qc) / r2.sqrt();
    }
    // Tail: padded full-vector iteration; see the f32 kernel for the
    // `q = 0` at `x = f64::MAX` pad-lane contract (exactly +0.0).
    if main < xs.len() {
        let rem = xs.len() - main;
        let mut px = [f64::MAX; L];
        let mut py = [0.0f64; L];
        let mut pz = [0.0f64; L];
        let mut pq = [0.0f64; L];
        px[..rem].copy_from_slice(&xs[main..]);
        py[..rem].copy_from_slice(&ys[main..]);
        pz[..rem].copy_from_slice(&zs[main..]);
        pq[..rem].copy_from_slice(&qs[main..]);
        let dx = F64Lanes::<L>::load(&px) - tx;
        let dy = F64Lanes::<L>::load(&py) - ty;
        let dz = F64Lanes::<L>::load(&pz) - tz;
        let r2 = dx * dx + dy * dy + dz * dz + ev;
        acc += F64Lanes::load(&pq) / r2.sqrt();
    }
    acc.sum()
}

/// Near-field potential over one SoA span with the external-target guard:
/// pairs at exactly zero (softened) distance contribute nothing and are
/// not counted, matching the scalar external-point loop. Returns the
/// potential and the number of counted pairs.
#[must_use]
pub fn p2p_potential_span_guarded(
    xs: &[f64],
    ys: &[f64],
    zs: &[f64],
    qs: &[f64],
    t: Vec3,
    eps2: f64,
) -> (f64, u64) {
    simd::dispatch(|| p2p_potential_span_guarded_impl::<P2P_LANES>(xs, ys, zs, qs, t, eps2))
}

#[inline(always)]
fn p2p_potential_span_guarded_impl<const L: usize>(
    xs: &[f64],
    ys: &[f64],
    zs: &[f64],
    qs: &[f64],
    t: Vec3,
    eps2: f64,
) -> (f64, u64) {
    debug_assert!(xs.len() == ys.len() && ys.len() == zs.len() && zs.len() == qs.len());
    // See `p2p_potential_span` for why `t` is hoisted into locals.
    let (tx, ty, tz) = (t.x, t.y, t.z);
    let main = xs.len() - xs.len() % L;
    let mut acc = [0.0f64; L];
    let mut cnt = [0u64; L];
    for (((xc, yc), zc), qc) in xs[..main]
        .chunks_exact(L)
        .zip(ys[..main].chunks_exact(L))
        .zip(zs[..main].chunks_exact(L))
        .zip(qs[..main].chunks_exact(L))
    {
        for l in 0..L {
            let dx = xc[l] - tx;
            let dy = yc[l] - ty;
            let dz = zc[l] - tz;
            let r2 = dx * dx + dy * dy + dz * dz + eps2;
            if r2 > 0.0 {
                acc[l] += qc[l] / r2.sqrt();
                cnt[l] += 1;
            }
        }
    }
    let mut phi = 0.0;
    let mut pairs = 0u64;
    for l in 0..L {
        phi += acc[l];
        pairs += cnt[l];
    }
    for j in main..xs.len() {
        let dx = xs[j] - tx;
        let dy = ys[j] - ty;
        let dz = zs[j] - tz;
        let r2 = dx * dx + dy * dy + dz * dz + eps2;
        if r2 > 0.0 {
            phi += qs[j] / r2.sqrt();
            pairs += 1;
        }
    }
    (phi, pairs)
}

/// Near-field potential and gradient over one SoA span with the
/// zero-distance guard (the scalar field loop guards both source and
/// external targets). The self particle, when in range, must already be
/// excluded by span splitting. Returns `(Φ, ∇Φ, counted pairs)`.
#[must_use]
pub fn p2p_field_span_guarded(
    xs: &[f64],
    ys: &[f64],
    zs: &[f64],
    qs: &[f64],
    t: Vec3,
    eps2: f64,
) -> (f64, Vec3, u64) {
    simd::dispatch(|| p2p_field_span_guarded_impl::<P2P_LANES>(xs, ys, zs, qs, t, eps2))
}

#[inline(always)]
fn p2p_field_span_guarded_impl<const L: usize>(
    xs: &[f64],
    ys: &[f64],
    zs: &[f64],
    qs: &[f64],
    t: Vec3,
    eps2: f64,
) -> (f64, Vec3, u64) {
    debug_assert!(xs.len() == ys.len() && ys.len() == zs.len() && zs.len() == qs.len());
    // See `p2p_potential_span` for why `t` is hoisted into locals.
    let (tx, ty, tz) = (t.x, t.y, t.z);
    let main = xs.len() - xs.len() % L;
    let mut acc_phi = [0.0f64; L];
    let mut acc_gx = [0.0f64; L];
    let mut acc_gy = [0.0f64; L];
    let mut acc_gz = [0.0f64; L];
    let mut cnt = [0u64; L];
    for (((xc, yc), zc), qc) in xs[..main]
        .chunks_exact(L)
        .zip(ys[..main].chunks_exact(L))
        .zip(zs[..main].chunks_exact(L))
        .zip(qs[..main].chunks_exact(L))
    {
        for l in 0..L {
            // d = target − source, as in the scalar field loop (the
            // gradient uses the signed components)
            let dx = tx - xc[l];
            let dy = ty - yc[l];
            let dz = tz - zc[l];
            let r2 = dx * dx + dy * dy + dz * dz + eps2;
            if r2 > 0.0 {
                let r = r2.sqrt();
                let f = -qc[l] / (r2 * r);
                acc_phi[l] += qc[l] / r;
                acc_gx[l] += dx * f;
                acc_gy[l] += dy * f;
                acc_gz[l] += dz * f;
                cnt[l] += 1;
            }
        }
    }
    let mut phi = 0.0;
    let mut grad = Vec3::ZERO;
    let mut pairs = 0u64;
    for l in 0..L {
        phi += acc_phi[l];
        grad += Vec3::new(acc_gx[l], acc_gy[l], acc_gz[l]);
        pairs += cnt[l];
    }
    for j in main..xs.len() {
        let dx = tx - xs[j];
        let dy = ty - ys[j];
        let dz = tz - zs[j];
        let r2 = dx * dx + dy * dy + dz * dz + eps2;
        if r2 > 0.0 {
            let r = r2.sqrt();
            let f = -qs[j] / (r2 * r);
            phi += qs[j] / r;
            grad += Vec3::new(dx * f, dy * f, dz * f);
            pairs += 1;
        }
    }
    (phi, grad, pairs)
}

/// f32 near-field potential over one span of the f32 SoA mirror,
/// **without** a zero-distance guard (self particle excluded by span
/// splitting). Pair arithmetic is f32; only the final lane reduction is
/// widened to f64. The caller opts in via
/// [`crate::bounds::f32_near_admissible`].
#[must_use]
pub fn p2p_potential_span_f32(
    xs: &[f32],
    ys: &[f32],
    zs: &[f32],
    qs: &[f32],
    t: Vec3,
    eps2: f64,
) -> f64 {
    simd::dispatch(|| p2p_potential_span_f32_impl::<P2P_LANES_F32>(xs, ys, zs, qs, t, eps2))
}

#[inline(always)]
fn p2p_potential_span_f32_impl<const L: usize>(
    xs: &[f32],
    ys: &[f32],
    zs: &[f32],
    qs: &[f32],
    t: Vec3,
    eps2: f64,
) -> f64 {
    debug_assert!(xs.len() == ys.len() && ys.len() == zs.len() && zs.len() == qs.len());
    let tx = F32Lanes::<L>::splat(t.x as f32);
    let ty = F32Lanes::<L>::splat(t.y as f32);
    let tz = F32Lanes::<L>::splat(t.z as f32);
    let ev = F32Lanes::<L>::splat(eps2 as f32);
    let main = xs.len() - xs.len() % L;
    let mut acc = F32Lanes::<L>::splat(0.0);
    for (((xc, yc), zc), qc) in xs[..main]
        .chunks_exact(L)
        .zip(ys[..main].chunks_exact(L))
        .zip(zs[..main].chunks_exact(L))
        .zip(qs[..main].chunks_exact(L))
    {
        let dx = F32Lanes::<L>::load(xc) - tx;
        let dy = F32Lanes::<L>::load(yc) - ty;
        let dz = F32Lanes::<L>::load(zc) - tz;
        let r2 = dx * dx + dy * dy + dz * dz + ev;
        acc += F32Lanes::load(qc) / r2.sqrt();
    }
    // Tail: pad to one more full vector instead of a scalar loop (spans
    // are ~leaf-sized, so the tail is a large fraction of the work). Pad
    // lanes carry `q = 0` at `x = f32::MAX`, so `dx²` overflows to +inf
    // and the lane contributes exactly `0/∞ = +0.0` — value-neutral and
    // identical at every dispatch level.
    if main < xs.len() {
        let rem = xs.len() - main;
        let mut px = [f32::MAX; L];
        let mut py = [0.0f32; L];
        let mut pz = [0.0f32; L];
        let mut pq = [0.0f32; L];
        px[..rem].copy_from_slice(&xs[main..]);
        py[..rem].copy_from_slice(&ys[main..]);
        pz[..rem].copy_from_slice(&zs[main..]);
        pq[..rem].copy_from_slice(&qs[main..]);
        let dx = F32Lanes::<L>::load(&px) - tx;
        let dy = F32Lanes::<L>::load(&py) - ty;
        let dz = F32Lanes::<L>::load(&pz) - tz;
        let r2 = dx * dx + dy * dy + dz * dz + ev;
        acc += F32Lanes::load(&pq) / r2.sqrt();
    }
    acc.sum_f64()
}

/// Guarded f32 analogue of [`p2p_potential_span_guarded`]: pairs at
/// exactly zero (softened) f32 distance contribute nothing and are not
/// counted. Returns the widened potential and the counted pairs. Note
/// the guard tests the *f32* distance, so a pair separated by less than
/// an f32 ULP from the target is skipped where the f64 kernel would keep
/// it — within the roundoff budget that gates this tier.
#[must_use]
pub fn p2p_potential_span_guarded_f32(
    xs: &[f32],
    ys: &[f32],
    zs: &[f32],
    qs: &[f32],
    t: Vec3,
    eps2: f64,
) -> (f64, u64) {
    simd::dispatch(|| p2p_potential_span_guarded_f32_impl::<P2P_LANES_F32>(xs, ys, zs, qs, t, eps2))
}

#[inline(always)]
fn p2p_potential_span_guarded_f32_impl<const L: usize>(
    xs: &[f32],
    ys: &[f32],
    zs: &[f32],
    qs: &[f32],
    t: Vec3,
    eps2: f64,
) -> (f64, u64) {
    debug_assert!(xs.len() == ys.len() && ys.len() == zs.len() && zs.len() == qs.len());
    let (tx, ty, tz, ev) = (t.x as f32, t.y as f32, t.z as f32, eps2 as f32);
    let main = xs.len() - xs.len() % L;
    let mut acc = [0.0f32; L];
    let mut cnt = [0u64; L];
    for (((xc, yc), zc), qc) in xs[..main]
        .chunks_exact(L)
        .zip(ys[..main].chunks_exact(L))
        .zip(zs[..main].chunks_exact(L))
        .zip(qs[..main].chunks_exact(L))
    {
        for l in 0..L {
            let dx = xc[l] - tx;
            let dy = yc[l] - ty;
            let dz = zc[l] - tz;
            let r2 = dx * dx + dy * dy + dz * dz + ev;
            if r2 > 0.0 {
                acc[l] += qc[l] / r2.sqrt();
                cnt[l] += 1;
            }
        }
    }
    let mut phi = 0.0f64;
    let mut pairs = 0u64;
    for l in 0..L {
        phi += f64::from(acc[l]);
        pairs += cnt[l];
    }
    for j in main..xs.len() {
        let dx = xs[j] - tx;
        let dy = ys[j] - ty;
        let dz = zs[j] - tz;
        let r2 = dx * dx + dy * dy + dz * dz + ev;
        if r2 > 0.0 {
            phi += f64::from(qs[j] / r2.sqrt());
            pairs += 1;
        }
    }
    (phi, pairs)
}

/// Guarded f32 analogue of [`p2p_field_span_guarded`]; see
/// [`p2p_potential_span_guarded_f32`] for the guard semantics. Returns
/// `(Φ, ∇Φ, counted pairs)` widened to f64.
#[must_use]
pub fn p2p_field_span_guarded_f32(
    xs: &[f32],
    ys: &[f32],
    zs: &[f32],
    qs: &[f32],
    t: Vec3,
    eps2: f64,
) -> (f64, Vec3, u64) {
    simd::dispatch(|| p2p_field_span_guarded_f32_impl::<P2P_LANES_F32>(xs, ys, zs, qs, t, eps2))
}

#[inline(always)]
fn p2p_field_span_guarded_f32_impl<const L: usize>(
    xs: &[f32],
    ys: &[f32],
    zs: &[f32],
    qs: &[f32],
    t: Vec3,
    eps2: f64,
) -> (f64, Vec3, u64) {
    debug_assert!(xs.len() == ys.len() && ys.len() == zs.len() && zs.len() == qs.len());
    let (tx, ty, tz, ev) = (t.x as f32, t.y as f32, t.z as f32, eps2 as f32);
    let main = xs.len() - xs.len() % L;
    let mut acc_phi = [0.0f32; L];
    let mut acc_gx = [0.0f32; L];
    let mut acc_gy = [0.0f32; L];
    let mut acc_gz = [0.0f32; L];
    let mut cnt = [0u64; L];
    for (((xc, yc), zc), qc) in xs[..main]
        .chunks_exact(L)
        .zip(ys[..main].chunks_exact(L))
        .zip(zs[..main].chunks_exact(L))
        .zip(qs[..main].chunks_exact(L))
    {
        for l in 0..L {
            let dx = tx - xc[l];
            let dy = ty - yc[l];
            let dz = tz - zc[l];
            let r2 = dx * dx + dy * dy + dz * dz + ev;
            if r2 > 0.0 {
                let r = r2.sqrt();
                let f = -qc[l] / (r2 * r);
                acc_phi[l] += qc[l] / r;
                acc_gx[l] += dx * f;
                acc_gy[l] += dy * f;
                acc_gz[l] += dz * f;
                cnt[l] += 1;
            }
        }
    }
    let mut phi = 0.0f64;
    let mut grad = Vec3::ZERO;
    let mut pairs = 0u64;
    for l in 0..L {
        phi += f64::from(acc_phi[l]);
        grad += Vec3::new(
            f64::from(acc_gx[l]),
            f64::from(acc_gy[l]),
            f64::from(acc_gz[l]),
        );
        pairs += cnt[l];
    }
    for j in main..xs.len() {
        let dx = tx - xs[j];
        let dy = ty - ys[j];
        let dz = tz - zs[j];
        let r2 = dx * dx + dy * dy + dz * dz + ev;
        if r2 > 0.0 {
            let r = r2.sqrt();
            let f = -qs[j] / (r2 * r);
            phi += f64::from(qs[j] / r);
            grad += Vec3::new(f64::from(dx * f), f64::from(dy * f), f64::from(dz * f));
            pairs += 1;
        }
    }
    (phi, grad, pairs)
}

/// Lane count for the dense M2L operator kernel at the scalar-fallback
/// dispatch level; the dispatched width follows [`crate::simd::dispatch`].
pub const M2L_LANES: usize = 4;

/// Accumulates one dense real M2L (or L2L) operator application:
/// `y[r] += Σ_c op[c·rows + r] · x[c]` with `op` column-major
/// (`rows = y.len()` rows × `x.len()` columns).
///
/// The compiled FMM stores each translation operator as a real matrix over
/// interleaved `(re, im)` coefficient spans, so the whole downward pass is
/// this one kernel. Columns whose input entry is exactly zero are skipped —
/// bit-exact, since their contribution would be `+0.0` everywhere — which
/// matters for sparse probe columns and zero high-order coefficients.
pub fn m2l_apply(op: &[f64], x: &[f64], y: &mut [f64]) {
    simd::dispatch(|| m2l_apply_impl::<M2L_LANES>(op, x, y));
}

#[inline(always)]
fn m2l_apply_impl<const L: usize>(op: &[f64], x: &[f64], y: &mut [f64]) {
    let rows = y.len();
    let cols = x.len();
    debug_assert_eq!(op.len(), rows * cols);
    let main = rows - rows % L;
    let mut c = 0;
    // Two columns per sweep over `y` halves the store traffic; summation
    // order per output row is by ascending column regardless of `L`.
    while c + 1 < cols {
        let (xa, xb) = (x[c], x[c + 1]);
        // lint: allow(float_cmp, exact-zero column skip: sparsity shortcut, never an equality test)
        if xa == 0.0 && xb == 0.0 {
            c += 2;
            continue;
        }
        let col_a = &op[c * rows..(c + 1) * rows];
        let col_b = &op[(c + 1) * rows..(c + 2) * rows];
        let va = F64Lanes::<L>::splat(xa);
        let vb = F64Lanes::<L>::splat(xb);
        for r in (0..main).step_by(L) {
            let acc = F64Lanes::<L>::load(&y[r..r + L])
                + F64Lanes::<L>::load(&col_a[r..r + L]) * va
                + F64Lanes::<L>::load(&col_b[r..r + L]) * vb;
            acc.store(&mut y[r..r + L]);
        }
        for r in main..rows {
            // Same association as the lane path — `(y + a·xa) + b·xb` — so
            // the result never depends on where the vector body ends.
            y[r] = y[r] + col_a[r] * xa + col_b[r] * xb;
        }
        c += 2;
    }
    if c < cols {
        let xa = x[c];
        // lint: allow(float_cmp, exact-zero column skip: sparsity shortcut, never an equality test)
        if xa != 0.0 {
            let col_a = &op[c * rows..(c + 1) * rows];
            let va = F64Lanes::<L>::splat(xa);
            for r in (0..main).step_by(L) {
                let acc =
                    F64Lanes::<L>::load(&y[r..r + L]) + F64Lanes::<L>::load(&col_a[r..r + L]) * va;
                acc.store(&mut y[r..r + L]);
            }
            for r in main..rows {
                y[r] += col_a[r] * xa;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expansion::MultipoleExpansion;
    use crate::workspace::Workspace;
    use mbt_geometry::Particle;
    use proptest::prelude::*;

    fn cluster(center: Vec3, radius: f64, n: usize, seed: u64) -> Vec<Particle> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| {
                let v = Vec3::new(next() * 2.0 - 1.0, next() * 2.0 - 1.0, next() * 2.0 - 1.0);
                Particle::new(center + v * radius, next() * 2.0 - 1.0)
            })
            .collect()
    }

    /// Four distinct expansions, four distinct points, degrees 0..=12:
    /// every lane of the group kernels must reproduce the scalar kernels
    /// to ULP precision (the algebraic spherical setup differs from the
    /// scalar `acos`/`atan2` path only in final-digit rounding).
    #[test]
    fn group_kernels_match_scalar_per_lane() {
        let centers = [
            Vec3::new(0.2, -0.1, 0.3),
            Vec3::new(-0.4, 0.5, 0.0),
            Vec3::new(0.0, 0.0, -0.6),
            Vec3::new(0.7, 0.7, 0.7),
        ];
        let exps: Vec<MultipoleExpansion> = centers
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                MultipoleExpansion::from_particles(c, 12, &cluster(c, 0.3, 30, i as u64 + 1))
            })
            .collect();
        let points = [
            Vec3::new(2.0, 1.0, -1.0),
            Vec3::new(-1.5, 2.0, 0.5),
            Vec3::new(0.3, -0.2, 3.0),
            Vec3::new(-2.0, -2.0, 1.0),
        ];
        let refs: Vec<_> = exps.iter().map(MultipoleExpansion::as_ref).collect();
        let g = M2pGroup {
            centers,
            points,
            coeffs: [
                refs[0].coeffs,
                refs[1].coeffs,
                refs[2].coeffs,
                refs[3].coeffs,
            ],
        };
        let mut bws = BatchWorkspace::new();
        let mut ws = Workspace::new();
        for degree in [0usize, 1, 2, 5, 12] {
            bws.prepare_degree(degree);
            let pot = m2p_potential_group(&g, &mut bws);
            let (fphi, fgrad) = m2p_field_group(&g, &mut bws);
            for l in 0..M2P_LANES {
                let close = |a: f64, b: f64| (a - b).abs() <= 1e-13 * b.abs().max(1e-300);
                let want = refs[l].potential_at_degree_with(points[l], degree, &mut ws);
                assert!(
                    close(pot[l], want),
                    "potential lane {l} degree {degree}: {} vs {want}",
                    pot[l]
                );
                let (wphi, wgrad) = refs[l].field_at_degree_with(points[l], degree, &mut ws);
                assert!(
                    close(fphi[l], wphi),
                    "field potential lane {l} degree {degree}: {} vs {wphi}",
                    fphi[l]
                );
                assert!(
                    fgrad[l].distance(wgrad) <= 1e-13 * wgrad.norm().max(1e-300),
                    "gradient lane {l} degree {degree}: {:?} vs {wgrad:?}",
                    fgrad[l]
                );
            }
        }
    }

    /// The same tasks evaluated in a 4-wide and an 8-wide group produce
    /// bit-identical outputs: lanes are independent and the per-lane
    /// operation sequence does not depend on `L`, so runtime width
    /// dispatch can never change results.
    #[test]
    fn lane_width_does_not_change_values() {
        let centers4 = [
            Vec3::new(0.2, -0.1, 0.3),
            Vec3::new(-0.4, 0.5, 0.0),
            Vec3::new(0.0, 0.0, -0.6),
            Vec3::new(0.7, 0.7, 0.7),
        ];
        let exps: Vec<MultipoleExpansion> = centers4
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                MultipoleExpansion::from_particles(c, 9, &cluster(c, 0.3, 25, i as u64 + 41))
            })
            .collect();
        let points4 = [
            Vec3::new(2.0, 1.0, -1.0),
            Vec3::new(-1.5, 2.0, 0.5),
            Vec3::new(0.3, -0.2, 3.0),
            Vec3::new(-2.0, -2.0, 1.0),
        ];
        let refs: Vec<_> = exps.iter().map(MultipoleExpansion::as_ref).collect();
        let g4 = M2pGroup::<4> {
            centers: centers4,
            points: points4,
            coeffs: std::array::from_fn(|l| refs[l].coeffs),
        };
        // 8-wide group holding the same four tasks twice over
        let g8 = M2pGroup::<8> {
            centers: std::array::from_fn(|l| centers4[l % 4]),
            points: std::array::from_fn(|l| points4[l % 4]),
            coeffs: std::array::from_fn(|l| refs[l % 4].coeffs),
        };
        let mut bws = BatchWorkspace::new();
        for degree in [0usize, 3, 9] {
            bws.prepare_degree_lanes(degree, 8);
            let pot4 = m2p_potential_group(&g4, &mut bws);
            let pot8 = m2p_potential_group(&g8, &mut bws);
            let (fphi4, fgrad4) = m2p_field_group(&g4, &mut bws);
            let (fphi8, fgrad8) = m2p_field_group(&g8, &mut bws);
            for l in 0..8 {
                assert_eq!(pot8[l], pot4[l % 4], "potential width mismatch lane {l}");
                assert_eq!(fphi8[l], fphi4[l % 4], "field phi width mismatch lane {l}");
                assert_eq!(fgrad8[l], fgrad4[l % 4], "gradient width mismatch lane {l}");
            }
        }
    }

    /// The broadcast (uniform-node) kernels are pure codegen relative to
    /// the general gather kernels: for a group whose lanes all reference
    /// one expansion, every lane of the uniform kernel must bit-equal the
    /// gather kernel — including padded groups where the tail lanes
    /// replicate the last real task.
    #[test]
    fn uniform_group_matches_gather_group() {
        let center = Vec3::new(0.15, -0.25, 0.4);
        let e = MultipoleExpansion::from_particles(center, 10, &cluster(center, 0.3, 40, 77));
        let r = e.as_ref();
        let distinct = [
            Vec3::new(2.0, 1.0, -1.0),
            Vec3::new(-1.5, 2.0, 0.5),
            Vec3::new(0.3, -0.2, 3.0),
            Vec3::new(-2.0, -2.0, 1.0),
            Vec3::new(1.1, -2.4, 0.9),
            Vec3::new(-0.8, 1.7, -2.2),
            Vec3::new(2.6, 0.4, 1.3),
            Vec3::new(-1.9, -0.6, 2.8),
        ];
        let mut bws = BatchWorkspace::new();
        for take in [1usize, 3, 8] {
            // Padded group: lanes past `take` repeat the last real point,
            // exactly as the executor pads a short same-node run.
            let points: [Vec3; 8] = std::array::from_fn(|l| distinct[l.min(take - 1)]);
            let g = M2pGroup::<8> {
                centers: [center; 8],
                points,
                coeffs: [r.coeffs; 8],
            };
            for degree in [0usize, 4, 10] {
                bws.prepare_degree_lanes(degree, 8);
                let pot_g = m2p_potential_group(&g, &mut bws);
                let pot_u = m2p_potential_group_uniform::<8>(center, r.coeffs, &points, &mut bws);
                let (fphi_g, fgrad_g) = m2p_field_group(&g, &mut bws);
                let (fphi_u, fgrad_u) =
                    m2p_field_group_uniform::<8>(center, r.coeffs, &points, &mut bws);
                for l in 0..8 {
                    assert_eq!(
                        pot_g[l].to_bits(),
                        pot_u[l].to_bits(),
                        "potential lane {l} take {take} degree {degree}"
                    );
                    assert_eq!(
                        fphi_g[l].to_bits(),
                        fphi_u[l].to_bits(),
                        "field phi lane {l} take {take} degree {degree}"
                    );
                    for (a, b) in [
                        (fgrad_g[l].x, fgrad_u[l].x),
                        (fgrad_g[l].y, fgrad_u[l].y),
                        (fgrad_g[l].z, fgrad_u[l].z),
                    ] {
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "gradient lane {l} take {take} degree {degree}"
                        );
                    }
                }
            }
        }
    }

    /// Padded groups (one task replicated into every lane) are the
    /// remainder-handling pattern; each lane must still be exact.
    #[test]
    fn replicated_lanes_are_independent() {
        let c = Vec3::new(0.1, 0.2, 0.3);
        let e = MultipoleExpansion::from_particles(c, 6, &cluster(c, 0.2, 20, 9));
        let r = e.as_ref();
        let pt = Vec3::new(1.5, -2.0, 0.7);
        let g = M2pGroup {
            centers: [c; M2P_LANES],
            points: [pt; M2P_LANES],
            coeffs: [r.coeffs; M2P_LANES],
        };
        let mut bws = BatchWorkspace::new();
        bws.prepare_degree(6);
        let pot = m2p_potential_group(&g, &mut bws);
        let mut ws = Workspace::new();
        let want = r.potential_at_degree_with(pt, 6, &mut ws);
        for l in 0..M2P_LANES {
            // replicated lanes are identical to each other bit for bit,
            // and ULP-close to the scalar kernel
            assert_eq!(pot[l], pot[0], "replicated lane {l} diverged");
            assert!(
                (pot[l] - want).abs() <= 1e-13 * want.abs().max(1e-300),
                "replicated lane {l}: {} vs {want}",
                pot[l]
            );
        }
    }

    proptest! {
        /// The degree-bucket executor pads short groups by replicating a
        /// live lane; whatever occupies the tail lanes, the live lanes'
        /// outputs must be bit-identical to a fully-live group's.
        #[test]
        fn padded_tail_lanes_never_contribute(
            take in 1usize..8,
            degree in 0usize..7,
            pad_seed in 0u64..64,
        ) {
            let centers: [Vec3; 8] = std::array::from_fn(|l| {
                Vec3::new(0.1 * l as f64, -0.2 + 0.05 * l as f64, 0.3)
            });
            let exps: Vec<MultipoleExpansion> = centers
                .iter()
                .enumerate()
                .map(|(i, &c)| {
                    MultipoleExpansion::from_particles(c, 7, &cluster(c, 0.25, 16, i as u64 + 7))
                })
                .collect();
            let pad_e = MultipoleExpansion::from_particles(
                Vec3::new(-0.9, 0.4, 0.1),
                7,
                &cluster(Vec3::new(-0.9, 0.4, 0.1), 0.2, 12, 1000 + pad_seed),
            );
            let points: [Vec3; 8] = std::array::from_fn(|l| {
                Vec3::new(1.8 + 0.3 * l as f64, -1.0, 2.0 - 0.2 * l as f64)
            });
            let pad_pt = Vec3::new(-3.0, 2.0 + pad_seed as f64 * 0.1, 1.5);
            let refs: Vec<_> = exps.iter().map(MultipoleExpansion::as_ref).collect();
            let pad_r = pad_e.as_ref();
            // fully live group vs. the same group with lanes take..8
            // replaced by unrelated padding tasks
            let g_full = M2pGroup::<8> {
                centers,
                points,
                coeffs: std::array::from_fn(|l| refs[l].coeffs),
            };
            let g_padded = M2pGroup::<8> {
                centers: std::array::from_fn(|l| if l < take { centers[l] } else { pad_r.center }),
                points: std::array::from_fn(|l| if l < take { points[l] } else { pad_pt }),
                coeffs: std::array::from_fn(|l| if l < take { refs[l].coeffs } else { pad_r.coeffs }),
            };
            let mut bws = BatchWorkspace::new();
            bws.prepare_degree_lanes(degree, 8);
            let full = m2p_potential_group(&g_full, &mut bws);
            let padded = m2p_potential_group(&g_padded, &mut bws);
            let (ffull, gfull) = m2p_field_group(&g_full, &mut bws);
            let (fpad, gpad) = m2p_field_group(&g_padded, &mut bws);
            for l in 0..take {
                prop_assert_eq!(padded[l], full[l], "live lane {} perturbed by padding", l);
                prop_assert_eq!(fpad[l], ffull[l], "live field lane {} perturbed", l);
                prop_assert_eq!(gpad[l], gfull[l], "live gradient lane {} perturbed", l);
            }
        }
    }

    fn soa_of(ps: &[Particle]) -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>) {
        (
            ps.iter().map(|p| p.position.x).collect(),
            ps.iter().map(|p| p.position.y).collect(),
            ps.iter().map(|p| p.position.z).collect(),
            ps.iter().map(|p| p.charge).collect(),
        )
    }

    fn soa32_of(ps: &[Particle]) -> (Vec<f32>, Vec<f32>, Vec<f32>, Vec<f32>) {
        (
            ps.iter().map(|p| p.position.x as f32).collect(),
            ps.iter().map(|p| p.position.y as f32).collect(),
            ps.iter().map(|p| p.position.z as f32).collect(),
            ps.iter().map(|p| p.charge as f32).collect(),
        )
    }

    #[test]
    fn p2p_span_matches_scalar_loop() {
        // span lengths straddling the widest lane count, with and
        // without guard
        for n in [0usize, 1, 3, 4, 5, 8, 13, 17] {
            let ps = cluster(Vec3::ZERO, 1.0, n, 7 + n as u64);
            let (xs, ys, zs, qs) = soa_of(&ps);
            let t = Vec3::new(0.3, -0.8, 0.2);
            for eps2 in [0.0, 1e-4] {
                let want: f64 = ps
                    .iter()
                    .map(|p| p.charge / (p.position.distance_sq(t) + eps2).sqrt())
                    .sum();
                let got = p2p_potential_span(&xs, &ys, &zs, &qs, t, eps2);
                assert!(
                    (got - want).abs() <= 1e-14 * want.abs().max(1.0),
                    "n={n} eps2={eps2}: {got} vs {want}"
                );
                let (gphi, gpairs) = p2p_potential_span_guarded(&xs, &ys, &zs, &qs, t, eps2);
                assert!((gphi - want).abs() <= 1e-14 * want.abs().max(1.0));
                assert_eq!(gpairs, n as u64);
            }
        }
    }

    #[test]
    fn p2p_guard_skips_coincident_source() {
        let ps = [
            Particle::new(Vec3::ZERO, 2.0),
            Particle::new(Vec3::X, 1.0),
            Particle::new(Vec3::new(0.0, 2.0, 0.0), -1.0),
        ];
        let (xs, ys, zs, qs) = soa_of(&ps);
        let (phi, pairs) = p2p_potential_span_guarded(&xs, &ys, &zs, &qs, Vec3::ZERO, 0.0);
        assert_eq!(pairs, 2);
        assert!((phi - (1.0 - 0.5)).abs() < 1e-15);
        let (fphi, fgrad, fpairs) = p2p_field_span_guarded(&xs, &ys, &zs, &qs, Vec3::ZERO, 0.0);
        assert_eq!(fpairs, 2);
        assert!((fphi - 0.5).abs() < 1e-15);
        assert!(fgrad.is_finite());
        // f32 guard: same skip semantics at f32 resolution
        let (x3, y3, z3, q3) = soa32_of(&ps);
        let (phi32, pairs32) = p2p_potential_span_guarded_f32(&x3, &y3, &z3, &q3, Vec3::ZERO, 0.0);
        assert_eq!(pairs32, 2);
        assert!((phi32 - 0.5).abs() < 1e-6);
        let (f3, g3, c3) = p2p_field_span_guarded_f32(&x3, &y3, &z3, &q3, Vec3::ZERO, 0.0);
        assert_eq!(c3, 2);
        assert!((f3 - 0.5).abs() < 1e-6);
        assert!(g3.is_finite());
    }

    #[test]
    fn p2p_field_matches_scalar_loop() {
        for n in [1usize, 4, 6, 11] {
            let ps = cluster(Vec3::new(0.2, 0.1, -0.3), 0.8, n, 100 + n as u64);
            let (xs, ys, zs, qs) = soa_of(&ps);
            let t = Vec3::new(-0.4, 0.9, 0.1);
            let eps2 = 1e-6;
            let mut wphi = 0.0;
            let mut wgrad = Vec3::ZERO;
            for p in &ps {
                let d = t - p.position;
                let r2 = d.norm_sq() + eps2;
                let r = r2.sqrt();
                wphi += p.charge / r;
                wgrad += d * (-p.charge / (r2 * r));
            }
            let (phi, grad, pairs) = p2p_field_span_guarded(&xs, &ys, &zs, &qs, t, eps2);
            assert_eq!(pairs, n as u64);
            assert!((phi - wphi).abs() <= 1e-13 * wphi.abs().max(1.0));
            assert!(grad.distance(wgrad) <= 1e-13 * wgrad.norm().max(1.0));
        }
    }

    /// The f32 span kernels track the f64 reference within single-
    /// precision roundoff: a handful of ULPs per pair, far inside the
    /// `ε32·pairs` budget that gates the tier.
    #[test]
    fn p2p_f32_spans_track_f64_within_roundoff() {
        for n in [0usize, 1, 7, 16, 19, 33] {
            let ps = cluster(Vec3::ZERO, 1.0, n, 500 + n as u64);
            let (xs, ys, zs, qs) = soa_of(&ps);
            let (x3, y3, z3, q3) = soa32_of(&ps);
            let t = Vec3::new(0.4, -0.7, 0.25);
            for eps2 in [0.0, 1e-4] {
                let want = p2p_potential_span(&xs, &ys, &zs, &qs, t, eps2);
                let tol = 1e-5 * want.abs().max(1.0) * (n.max(1) as f64);
                let got = p2p_potential_span_f32(&x3, &y3, &z3, &q3, t, eps2);
                assert!(
                    (got - want).abs() <= tol,
                    "unguarded n={n} eps2={eps2}: {got} vs {want}"
                );
                let (gphi, gpairs) = p2p_potential_span_guarded_f32(&x3, &y3, &z3, &q3, t, eps2);
                assert!((gphi - want).abs() <= tol);
                assert_eq!(gpairs, n as u64);
            }
            let (wphi, wgrad, _) = p2p_field_span_guarded(&xs, &ys, &zs, &qs, t, 1e-6);
            let (fphi, fgrad, fpairs) = p2p_field_span_guarded_f32(&x3, &y3, &z3, &q3, t, 1e-6);
            assert_eq!(fpairs, n as u64);
            let tol = 1e-4 * (n.max(1) as f64);
            assert!((fphi - wphi).abs() <= tol * wphi.abs().max(1.0));
            assert!(fgrad.distance(wgrad) <= tol * wgrad.norm().max(1.0));
        }
    }

    /// The dense operator kernel matches a plain per-row accumulation with
    /// the same per-row association, including ragged shapes, odd column
    /// counts, and exact-zero input entries.
    #[test]
    fn m2l_apply_matches_naive_accumulation() {
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        };
        for (rows, cols) in [
            (1usize, 1usize),
            (3, 2),
            (7, 5),
            (16, 16),
            (30, 13),
            (31, 4),
        ] {
            let op: Vec<f64> = (0..rows * cols).map(|_| next()).collect();
            let mut x: Vec<f64> = (0..cols).map(|_| next()).collect();
            if cols > 2 {
                x[1] = 0.0; // exercise the zero-column skip
                x[cols - 1] = 0.0;
            }
            let mut y: Vec<f64> = (0..rows).map(|_| next()).collect();
            let mut want = y.clone();
            for r in 0..rows {
                for c in 0..cols {
                    want[r] += op[c * rows + r] * x[c];
                }
            }
            m2l_apply(&op, &x, &mut y);
            for r in 0..rows {
                assert!(
                    (y[r] - want[r]).abs() <= 1e-14 * want[r].abs().max(1.0),
                    "rows={rows} cols={cols} r={r}: {} vs {}",
                    y[r],
                    want[r]
                );
            }
        }
    }
}
