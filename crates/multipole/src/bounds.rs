//! The paper's error bounds and the adaptive degree-selection rule.
//!
//! * [`theorem1_bound`] — Greengard–Rokhlin truncation bound for a single
//!   multipole evaluation,
//! * [`theorem2_bound`] — the same bound specialised to a Barnes–Hut
//!   interaction admitted by the α-criterion (the per-interaction error
//!   grows linearly in the cluster charge `A`, which is the paper's central
//!   observation),
//! * [`DegreeSelector`] — fixed-degree (classical Barnes–Hut) or the
//!   paper's adaptive rule (Theorem 3): pick `p` per cluster so that every
//!   admitted interaction carries (approximately) the same error.

/// Ratio `a/d`: circumradius of a cube over its edge (`√3/2`).
pub const CUBE_CIRCUMRADIUS_RATIO: f64 = 0.866_025_403_784_438_6;

/// Theorem 1: error of a degree-`p` truncated multipole expansion of
/// charges with `Σ|qᵢ| = abs_charge` inside radius `a`, evaluated at
/// distance `r > a` from the center:
///
/// ```text
/// |Φ(r) − Φ_p(r)| ≤ A/(r−a) · (a/r)^{p+1}
/// ```
///
/// Returns `+∞` when `r ≤ a` (the expansion does not converge there).
#[must_use]
pub fn theorem1_bound(abs_charge: f64, a: f64, r: f64, p: usize) -> f64 {
    #[cfg(feature = "validate")]
    {
        assert!(
            abs_charge >= 0.0 && a >= 0.0 && r >= 0.0,
            "validate: Theorem 1 takes non-negative A, a, r (got A={abs_charge}, a={a}, r={r})"
        );
    }
    if r <= a {
        return f64::INFINITY;
    }
    abs_charge / (r - a) * (a / r).powi(p as i32 + 1)
}

/// Theorem 2: error bound of a single Barnes–Hut particle–cluster
/// interaction admitted by the α-criterion, for a cluster of total absolute
/// charge `abs_charge` in a cube of edge `d` at distance `r ≥ d/α`:
/// Theorem 1 with `a = d·√3/2`.
#[must_use]
pub fn theorem2_bound(abs_charge: f64, d: f64, r: f64, p: usize) -> f64 {
    theorem1_bound(abs_charge, d * CUBE_CIRCUMRADIUS_RATIO, r, p)
}

/// Worst-case geometric decay ratio `κ = α·√3/2` of an interaction admitted
/// by the α-criterion: `a/r ≤ (d√3/2)/(d/α) = κ`.
///
/// Convergence requires `κ < 1`, i.e. `α < 2/√3 ≈ 1.1547`; the paper uses
/// `α < 1`.
#[must_use]
pub fn kappa(alpha: f64) -> f64 {
    alpha * CUBE_CIRCUMRADIUS_RATIO
}

/// How the adaptive rule weights a cluster when equalising errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DegreeWeighting {
    /// Weight by the cluster's absolute charge `A` only — the literal rule
    /// of Theorem 3 (equalise `A_j κ^{p_j+1}` across clusters).
    Charge,
    /// Weight by `A/d` — additionally accounts for the `1/(r−a)` factor of
    /// the true bound (`r` scales with the box edge `d` for interactions at
    /// that level). For uniform charge density this grows like `d²` per
    /// level instead of `d³`, so it prescribes smaller degree increments at
    /// equal accuracy. Default.
    #[default]
    ChargeOverDistance,
}

/// Degree policy of a treecode run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DegreeSelector {
    /// Classical Barnes–Hut: the same degree for every cluster.
    Fixed(usize),
    /// The paper's improved method (Theorem 3).
    Adaptive {
        /// Degree assigned to clusters at the reference weight.
        p_min: usize,
        /// Hard cap on the degree (storage/precision guard).
        p_max: usize,
        /// The multipole acceptance parameter α of the run (determines the
        /// decay ratio `κ`).
        alpha: f64,
        /// Cluster weighting.
        weighting: DegreeWeighting,
    },
    /// Tolerance-driven degrees: each cluster stores the smallest degree
    /// whose Theorem-1 bound at its worst admissible distance (`d/α`)
    /// meets `tol`, and each *interaction* may truncate further to the
    /// smallest degree meeting `tol` at its **actual** distance — the
    /// per-interaction refinement of the paper's "series computed a priori
    /// to the maximum required degree".
    Tolerance {
        /// Absolute per-interaction error budget.
        tol: f64,
        /// Degree floor.
        p_min: usize,
        /// Degree cap.
        p_max: usize,
    },
}

impl DegreeSelector {
    /// A convenient adaptive selector with default weighting and `p_max`.
    #[must_use]
    pub fn adaptive(p_min: usize, alpha: f64) -> Self {
        DegreeSelector::Adaptive {
            p_min,
            p_max: crate::tables::MAX_DEGREE,
            alpha,
            weighting: DegreeWeighting::default(),
        }
    }

    /// A tolerance-driven selector with default degree range.
    #[must_use]
    pub fn tolerance(tol: f64) -> Self {
        DegreeSelector::Tolerance {
            tol,
            p_min: 1,
            p_max: crate::tables::MAX_DEGREE,
        }
    }

    /// The weight of a cluster with absolute charge `abs_charge` in a cube
    /// of edge `d` under this selector's weighting.
    #[must_use]
    pub fn weight(&self, abs_charge: f64, d: f64) -> f64 {
        match self {
            DegreeSelector::Fixed(_) | DegreeSelector::Tolerance { .. } => abs_charge,
            DegreeSelector::Adaptive { weighting, .. } => match weighting {
                DegreeWeighting::Charge => abs_charge,
                DegreeWeighting::ChargeOverDistance => {
                    if d > 0.0 {
                        abs_charge / d
                    } else {
                        abs_charge
                    }
                }
            },
        }
    }

    /// The degree to store for a whole cluster, given its geometry and the
    /// run's MAC parameter. This is the entry point the treecode's upward
    /// pass uses; it dispatches on the policy:
    ///
    /// * `Fixed(p)` → `p`,
    /// * `Adaptive` → the Theorem-3 rule on the cluster weight relative to
    ///   `ref_weight`,
    /// * `Tolerance` → the smallest degree meeting `tol` at the worst
    ///   distance the α-criterion can admit this cluster from (`r = d/α`).
    #[must_use]
    pub fn degree_for_node(
        &self,
        abs_charge: f64,
        radius: f64,
        edge: f64,
        alpha: f64,
        ref_weight: f64,
    ) -> usize {
        match *self {
            DegreeSelector::Fixed(p) => p,
            DegreeSelector::Adaptive { .. } => {
                self.degree_for(self.weight(abs_charge, edge), ref_weight)
            }
            DegreeSelector::Tolerance { tol, p_min, p_max } => {
                if alpha <= 0.0 || edge <= 0.0 {
                    return p_min;
                }
                let r_min = edge / alpha;
                degree_for_tolerance_at(abs_charge, radius, r_min, tol, p_max).max(p_min)
            }
        }
    }

    /// The degree to use for a cluster of the given weight, relative to the
    /// reference weight `ref_weight` (the smallest leaf-cluster weight):
    ///
    /// ```text
    /// p = clamp(p_min + ⌈ log(w / w_ref) / log(1/κ) ⌉, p_min, p_max)
    /// ```
    ///
    /// so that `w · κ^{p+1} ≈ w_ref · κ^{p_min+1}` — every admitted
    /// interaction carries about the same error (Theorem 3).
    #[must_use]
    pub fn degree_for(&self, weight: f64, ref_weight: f64) -> usize {
        match *self {
            DegreeSelector::Fixed(p) => p,
            // weight-based selection does not apply; callers in Tolerance
            // mode use `degree_for_node` / `degree_for_tolerance_at`
            DegreeSelector::Tolerance { p_min, .. } => p_min,
            DegreeSelector::Adaptive {
                p_min,
                p_max,
                alpha,
                ..
            } => {
                let k = kappa(alpha);
                if !(k > 0.0 && k < 1.0) || weight <= 0.0 || ref_weight <= 0.0 {
                    return p_min;
                }
                let ratio = weight / ref_weight;
                if ratio <= 1.0 {
                    return p_min;
                }
                let extra = (ratio.ln() / (1.0 / k).ln()).ceil();
                let p = p_min as f64 + extra;
                (p as usize).clamp(p_min, p_max)
            }
        }
    }

    /// The largest degree this selector can emit.
    #[must_use]
    pub fn max_degree(&self) -> usize {
        match *self {
            DegreeSelector::Fixed(p) => p,
            DegreeSelector::Adaptive { p_max, .. } | DegreeSelector::Tolerance { p_max, .. } => {
                p_max
            }
        }
    }
}

/// Accumulation-safety factor of the f32 near-field roundoff model:
/// guard digits for the non-random part of the rounding (distance
/// cancellation, the softened `sqrt`/`div`, the input quantization of
/// the f32 SoA mirror).
const F32_ROUNDOFF_SAFETY: f64 = 8.0;

/// Margin by which the far-field truncation bound must dominate the f32
/// near-field roundoff budget before [`f32_near_admissible`] opts in:
/// switching tiers may not consume more than ~1/16 of the delivered
/// error budget.
const F32_ADMISSION_MARGIN: f64 = 16.0;

/// Conservative f32 near-field roundoff budget, **relative** to the
/// potential scale: `C · ε32 · pairs`, where `ε32` is the f32 unit
/// roundoff, `pairs = min(n, 27·leaf_capacity)` bounds the number of
/// near-field pairs per target (a 3×3×3 leaf neighbourhood, clamped by
/// the particle count), and `C` = [`F32_ROUNDOFF_SAFETY`]. The true
/// error behaves like `ε32·√pairs` (random-walk), so this linear model
/// leaves a wide verification margin — it is the budget the f32-tier
/// tolerance pins in `compiled_equivalence.rs` assert against.
#[must_use]
pub fn f32_near_roundoff_rel(n: usize, leaf_capacity: usize) -> f64 {
    let pairs = n.min(27 * leaf_capacity.max(1)).max(1) as f64;
    F32_ROUNDOFF_SAFETY * (f64::from(f32::EPSILON) * 0.5) * pairs
}

/// The precision-budget inequality behind the engine's `Precision` knob:
/// may the near field of a run with this degree rule and `alpha` be
/// evaluated in f32 without degrading delivered accuracy?
///
/// The far-field truncation error of an admitted interaction is bounded
/// by Theorem 1/2; relative to the monopole scale `A/r` and maximised
/// over admissible geometry (`a/r = κ = α·√3/2`, Theorem 2's
/// circumradius), summing the per-level geometric tail gives
///
/// ```text
/// far_rel ≥ κ^{p+1} / (1 − κ)
/// ```
///
/// with `p` the smallest degree the rule can emit (`Fixed(p)`, adaptive
/// `p_min` — adaptive runs equalise per-interaction error *at* the
/// `p_min` level, larger clusters only add degrees to hold it there).
/// The f32 near field adds at most [`f32_near_roundoff_rel`] relative
/// roundoff. f32 is admitted only when
///
/// ```text
/// far_rel ≥ MARGIN · C · ε32 · pairs
/// ```
///
/// so the truncation error the paper's bounds already charge the run
/// dominates the new roundoff by [`F32_ADMISSION_MARGIN`]×. For
/// `Tolerance { tol }` runs the comparison is absolute: the near-field
/// roundoff scale is `ε32 · pairs · q_max` (unit-scale geometry), and
/// f32 is admitted when `tol` exceeds the margined budget. Degenerate
/// rules (`κ ≥ 1`, non-finite inputs) stay f64.
#[must_use]
pub fn f32_near_admissible(
    selector: &DegreeSelector,
    alpha: f64,
    n: usize,
    q_max: f64,
    leaf_capacity: usize,
) -> bool {
    let near_rel = f32_near_roundoff_rel(n, leaf_capacity);
    let k = kappa(alpha);
    if !(k > 0.0 && k < 1.0 && q_max.is_finite()) || q_max < 0.0 {
        return false;
    }
    match *selector {
        DegreeSelector::Fixed(p) | DegreeSelector::Adaptive { p_min: p, .. } => {
            let far_rel = k.powi(p as i32 + 1) / (1.0 - k);
            far_rel >= F32_ADMISSION_MARGIN * near_rel
        }
        DegreeSelector::Tolerance { tol, .. } => tol >= F32_ADMISSION_MARGIN * near_rel * q_max,
    }
}

/// Smallest degree `p ≤ p_max` whose Theorem-1 bound at distance `r` for a
/// cluster of absolute charge `abs_charge` and radius `a` falls below
/// `tol`. Cheap: one multiply per candidate degree.
#[inline]
#[must_use]
pub fn degree_for_tolerance_at(abs_charge: f64, a: f64, r: f64, tol: f64, p_max: usize) -> usize {
    if r <= a || abs_charge <= 0.0 {
        return if abs_charge <= 0.0 { 0 } else { p_max };
    }
    let ratio = a / r;
    let mut bound = abs_charge / (r - a) * ratio; // Theorem 1 at p = 0
    let mut p = 0usize;
    while bound > tol && p < p_max {
        bound *= ratio;
        p += 1;
    }
    p
}

/// Smallest degree `p` such that the Theorem-2 bound for the given
/// interaction drops below `tol` (or `p_max` if none does). Useful for
/// tolerance-driven runs rather than reference-weight-driven ones.
#[must_use]
pub fn degree_for_tolerance(abs_charge: f64, d: f64, r: f64, tol: f64, p_max: usize) -> usize {
    for p in 0..=p_max {
        if theorem2_bound(abs_charge, d, r, p) <= tol {
            return p;
        }
    }
    p_max
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem1_monotone_in_p_and_r() {
        let (a, q) = (0.5, 10.0);
        let b1 = theorem1_bound(q, a, 2.0, 4);
        let b2 = theorem1_bound(q, a, 2.0, 8);
        assert!(b2 < b1, "bound must shrink with p");
        let b3 = theorem1_bound(q, a, 4.0, 4);
        assert!(b3 < b1, "bound must shrink with r");
        assert!(theorem1_bound(q, a, 0.4, 4).is_infinite());
        assert!(theorem1_bound(q, a, 0.5, 4).is_infinite());
    }

    #[test]
    fn theorem1_linear_in_charge() {
        let b1 = theorem1_bound(1.0, 0.3, 1.0, 5);
        let b8 = theorem1_bound(8.0, 0.3, 1.0, 5);
        assert!((b8 / b1 - 8.0).abs() < 1e-12);
    }

    #[test]
    fn kappa_convergence_domain() {
        assert!(kappa(0.999) < 1.0);
        assert!(kappa(1.16) > 1.0);
        assert!((kappa(1.0) - CUBE_CIRCUMRADIUS_RATIO).abs() < 1e-15);
    }

    #[test]
    fn fixed_selector_ignores_weight() {
        let s = DegreeSelector::Fixed(6);
        assert_eq!(s.degree_for(1.0, 1.0), 6);
        assert_eq!(s.degree_for(1e9, 1.0), 6);
        assert_eq!(s.max_degree(), 6);
    }

    #[test]
    fn adaptive_monotone_in_weight() {
        let s = DegreeSelector::adaptive(4, 0.7);
        let mut last = 0;
        for w in [1.0, 2.0, 8.0, 64.0, 512.0, 4096.0] {
            let p = s.degree_for(w, 1.0);
            assert!(p >= last, "degree must be nondecreasing in weight");
            assert!(p >= 4);
            last = p;
        }
        assert!(last > 4, "large clusters must get a higher degree");
    }

    #[test]
    fn adaptive_equalizes_error() {
        // With p chosen by the rule, w·κ^{p+1} stays within a factor 1/κ of
        // the reference error level.
        let alpha = 0.6;
        let s = DegreeSelector::adaptive(3, alpha);
        let k = kappa(alpha);
        let ref_err = 1.0 * k.powi(3 + 1);
        for w in [1.0, 3.0, 10.0, 100.0, 1e4, 1e6] {
            let p = s.degree_for(w, 1.0);
            let err = w * k.powi(p as i32 + 1);
            assert!(
                err <= ref_err * 1.000_001,
                "w={w}: err {err} exceeds reference {ref_err}"
            );
            // and not over-refined by more than one degree step
            if p > 3 {
                let err_prev = w * k.powi(p as i32);
                assert!(err_prev > ref_err * 0.999_999, "w={w}: degree over-refined");
            }
        }
    }

    #[test]
    fn adaptive_clamps_and_handles_degenerate_weights() {
        let s = DegreeSelector::Adaptive {
            p_min: 2,
            p_max: 5,
            alpha: 0.9,
            weighting: DegreeWeighting::Charge,
        };
        assert_eq!(s.degree_for(1e30, 1.0), 5);
        assert_eq!(s.degree_for(0.0, 1.0), 2);
        assert_eq!(s.degree_for(1.0, 0.0), 2);
        assert_eq!(s.degree_for(0.5, 1.0), 2);
    }

    #[test]
    fn weighting_variants() {
        let charge = DegreeSelector::Adaptive {
            p_min: 2,
            p_max: 30,
            alpha: 0.5,
            weighting: DegreeWeighting::Charge,
        };
        let over_d = DegreeSelector::Adaptive {
            p_min: 2,
            p_max: 30,
            alpha: 0.5,
            weighting: DegreeWeighting::ChargeOverDistance,
        };
        assert_eq!(charge.weight(8.0, 2.0), 8.0);
        assert_eq!(over_d.weight(8.0, 2.0), 4.0);
        // uniform density: doubling the box edge scales A by 8; A/d by 4 —
        // the A/d rule must prescribe a smaller or equal degree
        let p_charge = charge.degree_for(charge.weight(8.0, 2.0), 1.0);
        let p_over_d = over_d.degree_for(over_d.weight(8.0, 2.0), 1.0);
        assert!(p_over_d <= p_charge);
    }

    #[test]
    fn tolerance_selector_basics() {
        let s = DegreeSelector::Tolerance {
            tol: 1e-6,
            p_min: 2,
            p_max: 30,
        };
        assert_eq!(s.max_degree(), 30);
        // weight-based entry point degrades to p_min
        assert_eq!(s.degree_for(1e9, 1.0), 2);
        // node-level selection respects the bound
        let p = s.degree_for_node(50.0, 0.4, 0.8, 0.5, 1.0);
        assert!((2..=30).contains(&p));
        assert!(theorem1_bound(50.0, 0.4, 0.8 / 0.5, p) <= 1e-6);
        // heavier cluster at the same geometry needs at least as much
        let p2 = s.degree_for_node(5000.0, 0.4, 0.8, 0.5, 1.0);
        assert!(p2 >= p);
        // degenerate geometry falls back to the floor
        assert_eq!(s.degree_for_node(1.0, 0.0, 0.0, 0.5, 1.0), 2);
    }

    #[test]
    fn degree_for_tolerance_at_matches_bound() {
        let (a, q, r, tol) = (0.3, 12.0, 1.1, 1e-7);
        let p = degree_for_tolerance_at(q, a, r, tol, 40);
        assert!(theorem1_bound(q, a, r, p) <= tol);
        if p > 0 {
            assert!(theorem1_bound(q, a, r, p - 1) > tol);
        }
        // point cluster (a = 0): monopole is exact
        assert_eq!(degree_for_tolerance_at(q, 0.0, r, tol, 40), 0);
        // inside the sphere: clamp at p_max
        assert_eq!(degree_for_tolerance_at(q, 0.5, 0.4, tol, 17), 17);
        // zero charge needs nothing
        assert_eq!(degree_for_tolerance_at(0.0, a, r, tol, 40), 0);
        // closer targets need more degrees
        let near = degree_for_tolerance_at(q, a, 0.5, tol, 40);
        let far = degree_for_tolerance_at(q, a, 5.0, tol, 40);
        assert!(near > far);
    }

    #[test]
    fn f32_admission_follows_the_budget_inequality() {
        // Loose runs, where truncation dwarfs f32 roundoff, opt in…
        assert!(f32_near_admissible(
            &DegreeSelector::Fixed(4),
            0.7,
            100_000,
            1.0,
            32
        ));
        assert!(f32_near_admissible(
            &DegreeSelector::Fixed(8),
            0.7,
            100_000,
            1.0,
            32
        ));
        // …tight runs stay f64
        assert!(!f32_near_admissible(
            &DegreeSelector::Fixed(8),
            0.5,
            100_000,
            1.0,
            32
        ));
        assert!(!f32_near_admissible(
            &DegreeSelector::Fixed(12),
            0.7,
            100_000,
            1.0,
            32
        ));
        // adaptive runs are judged at their p_min error level
        assert!(f32_near_admissible(
            &DegreeSelector::adaptive(3, 0.7),
            0.7,
            100_000,
            1.0,
            32
        ));
        // tolerance mode compares the absolute budget against ε32·pairs·q_max
        assert!(!f32_near_admissible(
            &DegreeSelector::tolerance(1e-5),
            0.7,
            100_000,
            1.0,
            32
        ));
        assert!(f32_near_admissible(
            &DegreeSelector::tolerance(1e-1),
            0.7,
            100_000,
            1.0,
            32
        ));
        // divergent κ (α ≥ 2/√3) can never admit f32
        assert!(!f32_near_admissible(
            &DegreeSelector::Fixed(2),
            1.2,
            100_000,
            1.0,
            32
        ));
        // small n shrinks the pair budget and admits more
        assert!(f32_near_roundoff_rel(100, 32) < f32_near_roundoff_rel(100_000, 32));
        // the margin is real: the admitted far bound exceeds the budget 16×
        let far = kappa(0.7).powi(5) / (1.0 - kappa(0.7));
        assert!(far >= 16.0 * f32_near_roundoff_rel(100_000, 32));
    }

    #[test]
    fn tolerance_driven_degree() {
        let p = degree_for_tolerance(10.0, 1.0, 2.5, 1e-6, 40);
        assert!(p > 0 && p < 40);
        assert!(theorem2_bound(10.0, 1.0, 2.5, p) <= 1e-6);
        assert!(theorem2_bound(10.0, 1.0, 2.5, p - 1) > 1e-6);
        // unreachable tolerance clamps at p_max
        assert_eq!(degree_for_tolerance(10.0, 1.0, 1.05, 1e-30, 12), 12);
    }
}
