//! Minimal complex arithmetic for spherical-harmonic coefficients.
//!
//! Kept in-tree (rather than pulling a numerics crate) so the expansion hot
//! loops stay transparent to the optimizer and the workspace stays within
//! its approved dependency set.

use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` parts.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// `0 + 0i`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// `1 + 0i`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// `0 + 1i`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates `re + im·i`.
    #[inline(always)]
    #[must_use]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// A real number as a complex.
    #[inline(always)]
    #[must_use]
    pub const fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// `e^{iθ} = cos θ + i sin θ`.
    #[inline]
    #[must_use]
    pub fn cis(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Complex { re: c, im: s }
    }

    /// Complex conjugate.
    #[inline(always)]
    #[must_use]
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude.
    #[inline(always)]
    #[must_use]
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    #[inline(always)]
    #[must_use]
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// `i^k` for any (possibly negative) integer `k`. Exact — no rounding.
    ///
    /// The translation operators of Greengard–Rokhlin use unimodular factors
    /// of the form `i^{|k|−|m|−|k−m|}` whose exponent may be negative.
    #[inline]
    #[must_use]
    pub fn i_pow(k: i64) -> Self {
        match k.rem_euclid(4) {
            0 => Complex::new(1.0, 0.0),
            1 => Complex::new(0.0, 1.0),
            2 => Complex::new(-1.0, 0.0),
            _ => Complex::new(0.0, -1.0),
        }
    }

    /// Multiply by a real scalar.
    #[inline(always)]
    #[must_use]
    pub fn scale(self, s: f64) -> Self {
        Complex {
            re: self.re * s,
            im: self.im * s,
        }
    }

    /// True when both parts are finite.
    #[inline]
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline(always)]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    #[inline(always)]
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline(always)]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex {
    #[inline(always)]
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline(always)]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline(always)]
    fn mul(self, s: f64) -> Complex {
        self.scale(s)
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    #[inline(always)]
    fn mul(self, c: Complex) -> Complex {
        c.scale(self)
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline(always)]
    fn div(self, s: f64) -> Complex {
        Complex::new(self.re / s, self.im / s)
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: Complex) -> Complex {
        let d = rhs.norm_sq();
        Complex::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline(always)]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, Add::add)
    }
}

impl From<f64> for Complex {
    #[inline]
    fn from(re: f64) -> Self {
        Complex::real(re)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex) -> bool {
        (a - b).norm() < 1e-14
    }

    #[test]
    fn field_axioms_spot_checks() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-0.5, 3.0);
        assert!(close(a + b - b, a));
        assert!(close(a * b / b, a));
        assert!(close(a * Complex::ONE, a));
        assert!(close(a + Complex::ZERO, a));
        assert!(close(-(-a), a));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!(close(Complex::I * Complex::I, -Complex::ONE));
    }

    #[test]
    fn i_pow_all_residues() {
        assert_eq!(Complex::i_pow(0), Complex::ONE);
        assert_eq!(Complex::i_pow(1), Complex::I);
        assert_eq!(Complex::i_pow(2), -Complex::ONE);
        assert_eq!(Complex::i_pow(3), -Complex::I);
        assert_eq!(Complex::i_pow(4), Complex::ONE);
        assert_eq!(Complex::i_pow(-1), -Complex::I);
        assert_eq!(Complex::i_pow(-2), -Complex::ONE);
        assert_eq!(Complex::i_pow(-3), Complex::I);
        assert_eq!(Complex::i_pow(-4), Complex::ONE);
    }

    #[test]
    fn cis_and_conj() {
        let t = 0.7321;
        let c = Complex::cis(t);
        assert!((c.norm() - 1.0).abs() < 1e-15);
        assert!(close(c * c.conj(), Complex::ONE));
        assert!(close(Complex::cis(-t), c.conj()));
        // e^{i(a+b)} = e^{ia} e^{ib}
        assert!(close(
            Complex::cis(0.3) * Complex::cis(0.4),
            Complex::cis(0.7)
        ));
    }

    #[test]
    fn mul_matches_expanded_form() {
        let a = Complex::new(2.0, -1.0);
        let b = Complex::new(3.0, 4.0);
        // (2-i)(3+4i) = 6+8i-3i+4 = 10+5i
        assert!(close(a * b, Complex::new(10.0, 5.0)));
    }

    #[test]
    fn sum_over_iterator() {
        let s: Complex = (0..4).map(Complex::i_pow).sum();
        assert!(close(s, Complex::ZERO));
    }
}
