//! Multipole and local expansions of the `1/r` kernel.
//!
//! Both expansion kinds store the triangular `m ≥ 0` half of their complex
//! coefficient array — the potential is real, so `C_n^{−m} = conj(C_n^m)` —
//! together with the expansion center and degree.
//!
//! * [`MultipoleExpansion`] represents the far field of a charge cluster:
//!   `Φ(P) = Σ_{n≤p} Σ_{|m|≤n} M_n^m Y_n^m(θ,φ) / r^{n+1}`,
//!   valid outside the sphere enclosing the sources.
//! * [`LocalExpansion`] represents the field of distant charges inside a
//!   sphere: `Φ(P) = Σ_{j≤p} Σ_{|k|≤j} L_j^k Y_j^k(θ,φ) r^j`.

use mbt_geometry::{Particle, Spherical, Vec3};

use crate::complex::Complex;
use crate::tables::{tri_index, tri_len, Tables, MAX_DEGREE};
use crate::workspace::{fill_powers, Workspace};

/// Shared coefficient storage for both expansion kinds.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Coeffs {
    pub degree: usize,
    /// Triangular array, index `tri_index(n, m)` for `0 ≤ m ≤ n`.
    pub c: Vec<Complex>,
}

impl Coeffs {
    pub fn zero(degree: usize) -> Coeffs {
        assert!(
            degree <= MAX_DEGREE,
            "expansion degree {degree} exceeds MAX_DEGREE = {MAX_DEGREE}"
        );
        Coeffs {
            degree,
            // lint: allow(alloc, owned-expansion constructor; hot paths use arena spans)
            c: vec![Complex::ZERO; tri_len(degree)],
        }
    }

    /// Coefficient for any `|m| ≤ n` via conjugate symmetry. Orders beyond
    /// the stored degree read as zero, which lets translation loops run to
    /// a larger target degree without bounds fiddling.
    #[inline(always)]
    pub fn get(&self, n: usize, m: i64) -> Complex {
        if n > self.degree || m.unsigned_abs() as usize > n {
            return Complex::ZERO;
        }
        let v = self.c[tri_index(n, m.unsigned_abs() as usize)];
        if m < 0 {
            v.conj()
        } else {
            v
        }
    }

    #[inline(always)]
    pub fn add(&mut self, n: usize, m: usize, v: Complex) {
        self.c[tri_index(n, m)] += v;
    }

    pub fn add_assign(&mut self, other: &Coeffs) {
        assert_eq!(
            self.degree, other.degree,
            "degree mismatch in expansion accumulate"
        );
        for (a, b) in self.c.iter_mut().zip(&other.c) {
            *a += *b;
        }
    }

    pub fn max_abs(&self) -> f64 {
        self.c.iter().map(|v| v.norm()).fold(0.0, f64::max)
    }
}

/// Powers `rho^0 .. rho^degree` as a fresh allocation; hot paths use
/// [`fill_powers`] on a [`Workspace`] buffer instead.
pub(crate) fn powers(rho: f64, degree: usize) -> Vec<f64> {
    // lint: allow(alloc, documented allocating fallback; hot paths use fill_powers)
    let mut v = vec![0.0; degree + 1];
    fill_powers(&mut v, rho);
    v
}

/// A borrowed view of multipole coefficients: center, degree, and the
/// triangular `m ≥ 0` coefficient slice.
///
/// This is the evaluation-side currency of the crate. An owned
/// [`MultipoleExpansion`] views itself via
/// [`MultipoleExpansion::as_ref`]; arena-backed storage (one contiguous
/// buffer holding every node's coefficients) views each span directly,
/// with no per-node allocation. All evaluation and translation kernels
/// are implemented against this type; the owned methods are thin
/// wrappers.
#[derive(Debug, Clone, Copy)]
pub struct ExpansionRef<'a> {
    pub(crate) center: Vec3,
    pub(crate) degree: usize,
    pub(crate) coeffs: &'a [Complex],
}

impl<'a> ExpansionRef<'a> {
    /// Wraps a coefficient span. `coeffs` must hold exactly the triangular
    /// array for `degree`, i.e. `(degree+1)(degree+2)/2` entries.
    #[inline]
    #[must_use]
    pub fn new(center: Vec3, degree: usize, coeffs: &'a [Complex]) -> ExpansionRef<'a> {
        assert_eq!(
            coeffs.len(),
            tri_len(degree),
            "coefficient span length does not match degree {degree}"
        );
        ExpansionRef {
            center,
            degree,
            coeffs,
        }
    }

    /// Expansion center.
    #[inline]
    #[must_use]
    pub fn center(&self) -> Vec3 {
        self.center
    }

    /// Truncation degree `p`.
    #[inline]
    #[must_use]
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Number of real-valued series terms, `(p+1)²`.
    #[inline]
    #[must_use]
    pub fn term_count(&self) -> u64 {
        let p = self.degree as u64;
        (p + 1) * (p + 1)
    }

    /// The raw triangular `m ≥ 0` coefficient span (length
    /// `tri_len(degree)`), for callers that snapshot an expansion into
    /// their own storage.
    #[inline]
    #[must_use]
    pub fn coeffs(&self) -> &'a [Complex] {
        self.coeffs
    }

    /// Coefficient `M_n^m` for any `|m| ≤ n` via conjugate symmetry;
    /// degrees beyond the stored degree read as zero (same contract as the
    /// owned accessor).
    #[inline(always)]
    #[must_use]
    pub fn coeff(&self, n: usize, m: i64) -> Complex {
        if n > self.degree || m.unsigned_abs() as usize > n {
            return Complex::ZERO;
        }
        let v = self.coeffs[tri_index(n, m.unsigned_abs() as usize)];
        if m < 0 {
            v.conj()
        } else {
            v
        }
    }

    /// Largest coefficient magnitude (diagnostics).
    pub fn max_abs(&self) -> f64 {
        self.coeffs.iter().map(|v| v.norm()).fold(0.0, f64::max)
    }

    /// Copies this view into an owned expansion (diagnostics and
    /// equivalence testing against the allocating evaluation path).
    #[must_use]
    pub fn to_expansion(&self) -> MultipoleExpansion {
        MultipoleExpansion {
            center: self.center,
            coeffs: Coeffs {
                degree: self.degree,
                // lint: allow(alloc, explicit copy-out conversion for diagnostics)
                c: self.coeffs.to_vec(),
            },
        }
    }

    /// Evaluates the truncated series at an observation point (M2P) using
    /// caller-provided scratch. Allocation-free once `ws` has grown to
    /// this degree.
    pub fn potential_at_with(&self, point: Vec3, ws: &mut Workspace) -> f64 {
        self.potential_at_degree_with(point, self.degree, ws)
    }

    /// Evaluates only the degree-`degree` prefix of the series (M2P with
    /// per-interaction truncation) using caller-provided scratch.
    ///
    /// Arithmetic is identical, operation for operation, to
    /// [`MultipoleExpansion::potential_at_degree`] — the owned method is a
    /// wrapper over this kernel — so reusing a workspace never changes
    /// results, bit for bit.
    #[allow(clippy::needless_range_loop)] // `n` indexes several degree-keyed arrays
    pub fn potential_at_degree_with(&self, point: Vec3, degree: usize, ws: &mut Workspace) -> f64 {
        let degree = degree.min(self.degree);
        let s = Spherical::from_cartesian(point - self.center);
        debug_assert!(s.rho > 0.0, "evaluation at the expansion center");
        let t = Tables::get();
        let (sin_t, cos_t) = s.theta.sin_cos();
        ws.ensure_degree(degree);
        ws.leg.recompute(degree, cos_t, sin_t);
        let Workspace { leg, acc_pot, .. } = ws;
        let inv_r = 1.0 / s.rho;
        let e1 = Complex::cis(s.phi);

        let mut phi = 0.0;
        let mut eim = Complex::ONE;
        // loop m-major so e^{imφ} is built incrementally
        let contributions = &mut acc_pot[..=degree]; // per-degree partial sums
        contributions.fill(0.0);
        for m in 0..=degree {
            let w = if m == 0 { 1.0 } else { 2.0 };
            for n in m..=degree {
                let c = self.coeff(n, m as i64) * eim;
                contributions[n] += w * c.re * t.norm(n, m as i64) * leg.p(n, m);
            }
            eim *= e1;
        }
        let mut rpow = inv_r;
        for contrib in contributions.iter().take(degree + 1) {
            phi += contrib * rpow;
            rpow *= inv_r;
        }
        phi
    }

    /// Potential and gradient `∇Φ` at an observation point using
    /// caller-provided scratch (see
    /// [`ExpansionRef::potential_at_degree_with`] for the reuse contract).
    pub fn field_at_with(&self, point: Vec3, ws: &mut Workspace) -> (f64, Vec3) {
        self.field_at_degree_with(point, self.degree, ws)
    }

    /// Potential and gradient using only the degree-`degree` prefix, with
    /// caller-provided scratch. Bit-identical to
    /// [`MultipoleExpansion::field_at_degree`].
    pub fn field_at_degree_with(
        &self,
        point: Vec3,
        degree: usize,
        ws: &mut Workspace,
    ) -> (f64, Vec3) {
        let degree = degree.min(self.degree);
        let s = Spherical::from_cartesian(point - self.center);
        debug_assert!(s.rho > 0.0, "evaluation at the expansion center");
        let t = Tables::get();
        let (sin_t, cos_t) = s.theta.sin_cos();
        let (sin_p, cos_p) = s.phi.sin_cos();
        ws.ensure_degree(degree);
        ws.leg.recompute(degree, cos_t, sin_t);
        let Workspace {
            leg,
            acc_pot,
            acc_dth,
            acc_dph,
            ..
        } = ws;
        let inv_r = 1.0 / s.rho;
        let e1 = Complex::new(cos_p, sin_p);

        let pot_n = &mut acc_pot[..=degree];
        let dth_n = &mut acc_dth[..=degree];
        let dph_n = &mut acc_dph[..=degree];
        pot_n.fill(0.0);
        dth_n.fill(0.0);
        dph_n.fill(0.0);
        let mut eim = Complex::ONE;
        for m in 0..=degree {
            let w = if m == 0 { 1.0 } else { 2.0 };
            for n in m..=degree {
                let c = self.coeff(n, m as i64) * eim;
                let nr = t.norm(n, m as i64);
                pot_n[n] += w * c.re * nr * leg.p(n, m);
                dth_n[n] += w * c.re * nr * leg.dp_dtheta(n, m);
                if m >= 1 {
                    dph_n[n] += -2.0 * m as f64 * c.im * nr * leg.p_over_sin(n, m);
                }
            }
            eim *= e1;
        }
        let mut phi = 0.0;
        let mut g_r = 0.0;
        let mut g_t = 0.0;
        let mut g_p = 0.0;
        let mut rpow1 = inv_r; // r^{-(n+1)}
        for n in 0..=degree {
            let rpow2 = rpow1 * inv_r; // r^{-(n+2)}
            phi += pot_n[n] * rpow1;
            g_r += -((n + 1) as f64) * pot_n[n] * rpow2;
            g_t += dth_n[n] * rpow2;
            g_p += dph_n[n] * rpow2;
            rpow1 = rpow2;
        }
        let e_r = Vec3::new(sin_t * cos_p, sin_t * sin_p, cos_t);
        let e_t = Vec3::new(cos_t * cos_p, cos_t * sin_p, -sin_t);
        let e_p = Vec3::new(-sin_p, cos_p, 0.0);
        (phi, e_r * g_r + e_t * g_t + e_p * g_p)
    }
}

/// Accumulates one source charge into a raw coefficient span (P2M kernel):
/// `M_n^m += q ρⁿ Y_n^{−m}(α, β)`.
///
/// Shared by every P2M entry point — owned expansions and arena spans —
/// so all of them produce bit-identical coefficients.
#[allow(clippy::needless_range_loop)] // `n` indexes several degree-keyed arrays
pub(crate) fn p2m_accumulate(
    coeffs: &mut [Complex],
    center: Vec3,
    degree: usize,
    charge: f64,
    position: Vec3,
    ws: &mut Workspace,
) {
    let s = Spherical::from_cartesian(position - center);
    let t = Tables::get();
    let (sin_t, cos_t) = s.theta.sin_cos();
    ws.ensure_degree(degree);
    ws.leg.recompute(degree, cos_t, sin_t);
    let Workspace { leg, pow, .. } = ws;
    let rp = &mut pow[..=degree];
    fill_powers(rp, s.rho);
    // Y_n^{-m} = norm · P_n^m · e^{-imφ}
    let e1 = Complex::cis(-s.phi);
    let mut eim = Complex::ONE;
    for m in 0..=degree {
        for n in m..=degree {
            let re = charge * rp[n] * t.norm(n, m as i64) * leg.p(n, m);
            coeffs[tri_index(n, m)] += eim * re;
        }
        eim *= e1;
    }
}

/// Builds the multipole expansion of a particle set directly into a raw
/// coefficient span (P2M into arena storage).
///
/// `out` must hold exactly `(degree+1)(degree+2)/2` entries; it is zeroed
/// and then accumulated into, so the result is bit-identical to
/// [`MultipoleExpansion::from_particles`] over the same particle order.
pub fn p2m_into(
    out: &mut [Complex],
    center: Vec3,
    degree: usize,
    particles: &[Particle],
    ws: &mut Workspace,
) {
    assert_eq!(
        out.len(),
        tri_len(degree),
        "coefficient span length does not match degree"
    );
    out.fill(Complex::ZERO);
    for p in particles {
        p2m_accumulate(out, center, degree, p.charge, p.position, ws);
    }
}

/// A truncated multipole expansion about a center.
#[derive(Debug, Clone, PartialEq)]
pub struct MultipoleExpansion {
    pub(crate) center: Vec3,
    pub(crate) coeffs: Coeffs,
}

impl MultipoleExpansion {
    /// The zero expansion of the given degree.
    #[must_use]
    pub fn zero(center: Vec3, degree: usize) -> Self {
        MultipoleExpansion {
            center,
            coeffs: Coeffs::zero(degree),
        }
    }

    /// Builds the expansion of a particle set (P2M):
    /// `M_n^m = Σᵢ qᵢ ρᵢⁿ Y_n^{−m}(αᵢ, βᵢ)`.
    #[must_use]
    pub fn from_particles(center: Vec3, degree: usize, particles: &[Particle]) -> Self {
        let mut ws = Workspace::with_capacity(degree);
        let mut e = Self::zero(center, degree);
        for p in particles {
            e.add_particle_with(p.charge, p.position, &mut ws);
        }
        e
    }

    /// Accumulates one source charge into the expansion.
    pub fn add_particle(&mut self, charge: f64, position: Vec3) {
        let mut ws = Workspace::with_capacity(self.coeffs.degree);
        self.add_particle_with(charge, position, &mut ws);
    }

    /// Accumulates one source charge using caller-provided scratch;
    /// allocation-free once `ws` has grown to this expansion's degree.
    pub fn add_particle_with(&mut self, charge: f64, position: Vec3, ws: &mut Workspace) {
        p2m_accumulate(
            &mut self.coeffs.c,
            self.center,
            self.coeffs.degree,
            charge,
            position,
            ws,
        );
    }

    /// A borrowed evaluation view of this expansion.
    #[inline]
    #[must_use]
    pub fn as_ref(&self) -> ExpansionRef<'_> {
        ExpansionRef {
            center: self.center,
            degree: self.coeffs.degree,
            coeffs: &self.coeffs.c,
        }
    }

    /// Expansion center.
    #[inline]
    #[must_use]
    pub fn center(&self) -> Vec3 {
        self.center
    }

    /// Truncation degree `p`.
    #[inline]
    #[must_use]
    pub fn degree(&self) -> usize {
        self.coeffs.degree
    }

    /// Number of real-valued series terms, `(p+1)²` — the unit the paper's
    /// Table 1 counts.
    #[inline]
    #[must_use]
    pub fn term_count(&self) -> u64 {
        let p = self.coeffs.degree as u64;
        (p + 1) * (p + 1)
    }

    /// Coefficient `M_n^m` for any `|m| ≤ n`.
    #[inline]
    #[must_use]
    pub fn coeff(&self, n: usize, m: i64) -> Complex {
        self.coeffs.get(n, m)
    }

    /// Adds another expansion with the same center and degree.
    pub fn accumulate(&mut self, other: &MultipoleExpansion) {
        assert!(
            // lint: allow(float_cmp, centers must match bit-exactly to accumulate)
            self.center.distance(other.center) == 0.0,
            "cannot accumulate expansions about different centers"
        );
        self.coeffs.add_assign(&other.coeffs);
    }

    /// Evaluates the truncated series at an observation point (M2P).
    ///
    /// The point must be outside the sphere enclosing the sources for the
    /// result to approximate the true potential (Theorem 1 controls the
    /// error); the series itself is evaluated wherever `r > 0`.
    #[must_use]
    pub fn potential_at(&self, point: Vec3) -> f64 {
        self.potential_at_degree(point, self.coeffs.degree)
    }

    /// Evaluates only the degree-`degree` prefix of the series (M2P with
    /// per-interaction truncation).
    ///
    /// The paper computes "the multipole series a priori to the maximum
    /// required degree"; an individual interaction may then read only the
    /// prefix its own error budget requires. `degree` is clamped to the
    /// stored degree.
    ///
    /// Convenience wrapper allocating fresh scratch; hot loops should hold
    /// a [`Workspace`] and call [`ExpansionRef::potential_at_degree_with`].
    #[must_use]
    pub fn potential_at_degree(&self, point: Vec3, degree: usize) -> f64 {
        let mut ws = Workspace::with_capacity(degree.min(self.coeffs.degree));
        self.as_ref()
            .potential_at_degree_with(point, degree, &mut ws)
    }

    /// Evaluates potential and gradient `∇Φ` at an observation point.
    ///
    /// Pole-safe: the azimuthal term uses `P_n^m / sin θ` arrays, never a
    /// division by `sin θ`.
    #[must_use]
    pub fn field_at(&self, point: Vec3) -> (f64, Vec3) {
        self.field_at_degree(point, self.coeffs.degree)
    }

    /// Potential and gradient using only the degree-`degree` prefix of the
    /// stored series (see [`MultipoleExpansion::potential_at_degree`]).
    ///
    /// Convenience wrapper allocating fresh scratch; hot loops should hold
    /// a [`Workspace`] and call [`ExpansionRef::field_at_degree_with`].
    #[must_use]
    pub fn field_at_degree(&self, point: Vec3, degree: usize) -> (f64, Vec3) {
        let mut ws = Workspace::with_capacity(degree.min(self.coeffs.degree));
        self.as_ref().field_at_degree_with(point, degree, &mut ws)
    }

    /// Largest coefficient magnitude (diagnostics).
    #[must_use]
    pub fn max_coeff(&self) -> f64 {
        self.coeffs.max_abs()
    }
}

/// A truncated local expansion about a center.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalExpansion {
    pub(crate) center: Vec3,
    pub(crate) coeffs: Coeffs,
}

impl LocalExpansion {
    /// The zero expansion of the given degree.
    #[must_use]
    pub fn zero(center: Vec3, degree: usize) -> Self {
        LocalExpansion {
            center,
            coeffs: Coeffs::zero(degree),
        }
    }

    /// Wraps an owned copy of a triangular `m ≥ 0` coefficient span
    /// (`tri_index` layout, `tri_len(degree)` entries). Arena-backed
    /// storage uses this to lift flat local-coefficient spans back into
    /// owned expansions — e.g. to probe translation operators
    /// column-by-column or to compare against the scalar reference.
    #[must_use]
    pub fn from_coeffs(center: Vec3, degree: usize, coeffs: &[Complex]) -> Self {
        assert_eq!(
            coeffs.len(),
            tri_len(degree),
            "coefficient span length does not match degree {degree}"
        );
        let mut e = Self::zero(center, degree);
        e.coeffs.c.copy_from_slice(coeffs);
        e
    }

    /// Builds the local expansion of distant point sources directly (P2L):
    /// `L_j^k = Σᵢ qᵢ Y_j^{−k}(αᵢ, βᵢ) / ρᵢ^{j+1}`.
    ///
    /// Valid for observation points closer to the center than every source.
    #[must_use]
    pub fn from_distant_particles(center: Vec3, degree: usize, particles: &[Particle]) -> Self {
        let mut e = Self::zero(center, degree);
        for p in particles {
            e.add_distant_particle(p.charge, p.position);
        }
        e
    }

    /// Accumulates a single distant source (P2L).
    pub fn add_distant_particle(&mut self, charge: f64, position: Vec3) {
        let mut ws = Workspace::with_capacity(self.coeffs.degree);
        self.add_distant_particle_with(charge, position, &mut ws);
    }

    /// Accumulates a single distant source (P2L) using caller-provided
    /// scratch; allocation-free once `ws` has grown to this degree.
    #[allow(clippy::needless_range_loop)] // `n` indexes several degree-keyed arrays
    pub fn add_distant_particle_with(&mut self, charge: f64, position: Vec3, ws: &mut Workspace) {
        let degree = self.coeffs.degree;
        let s = Spherical::from_cartesian(position - self.center);
        assert!(s.rho > 0.0, "P2L source at the local center");
        let t = Tables::get();
        let (sin_t, cos_t) = s.theta.sin_cos();
        ws.ensure_degree(degree);
        ws.leg.recompute(degree, cos_t, sin_t);
        let Workspace { leg, pow, .. } = ws;
        let invp = &mut pow[..degree + 2]; // needs rho^{-(degree+1)}
        fill_powers(invp, 1.0 / s.rho);
        let e1 = Complex::cis(-s.phi);
        let mut eim = Complex::ONE;
        for m in 0..=degree {
            for n in m..=degree {
                let re = charge * invp[n + 1] * t.norm(n, m as i64) * leg.p(n, m);
                self.coeffs.add(n, m, eim * re);
            }
            eim *= e1;
        }
    }

    /// Expansion center.
    #[inline]
    #[must_use]
    pub fn center(&self) -> Vec3 {
        self.center
    }

    /// Truncation degree `p`.
    #[inline]
    #[must_use]
    pub fn degree(&self) -> usize {
        self.coeffs.degree
    }

    /// Coefficient `L_j^k` for any `|k| ≤ j`.
    #[inline]
    #[must_use]
    pub fn coeff(&self, j: usize, k: i64) -> Complex {
        self.coeffs.get(j, k)
    }

    /// Adds another expansion with the same center and degree.
    pub fn accumulate(&mut self, other: &LocalExpansion) {
        assert!(
            // lint: allow(float_cmp, centers must match bit-exactly to accumulate)
            self.center.distance(other.center) == 0.0,
            "cannot accumulate expansions about different centers"
        );
        self.coeffs.add_assign(&other.coeffs);
    }

    /// Evaluates the local series at a point (L2P).
    #[must_use]
    pub fn potential_at(&self, point: Vec3) -> f64 {
        let mut ws = Workspace::with_capacity(self.coeffs.degree);
        self.potential_at_with(point, &mut ws)
    }

    /// L2P with caller-provided scratch; allocation-free once `ws` has
    /// grown to this degree.
    pub fn potential_at_with(&self, point: Vec3, ws: &mut Workspace) -> f64 {
        l2p_potential_with(self.center, self.coeffs.degree, &self.coeffs.c, point, ws)
    }

    /// Evaluates potential and gradient at a point (L2P with derivatives).
    #[must_use]
    pub fn field_at(&self, point: Vec3) -> (f64, Vec3) {
        let mut ws = Workspace::with_capacity(self.coeffs.degree);
        self.field_at_with(point, &mut ws)
    }

    /// L2P with derivatives using caller-provided scratch; allocation-free
    /// once `ws` has grown to this degree.
    pub fn field_at_with(&self, point: Vec3, ws: &mut Workspace) -> (f64, Vec3) {
        l2p_field_with(self.center, self.coeffs.degree, &self.coeffs.c, point, ws)
    }

    /// Largest coefficient magnitude (diagnostics).
    #[must_use]
    pub fn max_coeff(&self) -> f64 {
        self.coeffs.max_abs()
    }
}

/// L2P over a borrowed triangular coefficient span (`tri_index` layout,
/// `tri_len(degree)` entries, `m ≥ 0` rows). This is the kernel behind
/// [`LocalExpansion::potential_at_with`]; arena-backed evaluators call it
/// directly so finest-level locals never need to be lifted into owned
/// expansions.
#[allow(clippy::needless_range_loop)] // `n` indexes several degree-keyed arrays
pub fn l2p_potential_with(
    center: Vec3,
    degree: usize,
    coeffs: &[Complex],
    point: Vec3,
    ws: &mut Workspace,
) -> f64 {
    let s = Spherical::from_cartesian(point - center);
    let t = Tables::get();
    let (sin_t, cos_t) = s.theta.sin_cos();
    ws.ensure_degree(degree);
    ws.leg.recompute(degree, cos_t, sin_t);
    let Workspace { leg, pow, .. } = ws;
    let rp = &mut pow[..=degree];
    fill_powers(rp, s.rho);
    let e1 = Complex::cis(s.phi);
    let mut eim = Complex::ONE;
    let mut phi = 0.0;
    for m in 0..=degree {
        let w = if m == 0 { 1.0 } else { 2.0 };
        for n in m..=degree {
            let c = coeffs[tri_index(n, m)] * eim;
            phi += w * c.re * t.norm(n, m as i64) * leg.p(n, m) * rp[n];
        }
        eim *= e1;
    }
    phi
}

/// L2P with derivatives over a borrowed triangular coefficient span — the
/// kernel behind [`LocalExpansion::field_at_with`]; see
/// [`l2p_potential_with`] for the span layout.
#[allow(clippy::needless_range_loop)] // `n` indexes several degree-keyed arrays
pub fn l2p_field_with(
    center: Vec3,
    degree: usize,
    coeffs: &[Complex],
    point: Vec3,
    ws: &mut Workspace,
) -> (f64, Vec3) {
    let s = Spherical::from_cartesian(point - center);
    let t = Tables::get();
    let (sin_t, cos_t) = s.theta.sin_cos();
    let (sin_p, cos_p) = s.phi.sin_cos();
    ws.ensure_degree(degree);
    ws.leg.recompute(degree, cos_t, sin_t);
    let Workspace { leg, pow, .. } = ws;
    let rp = &mut pow[..=degree];
    fill_powers(rp, s.rho);
    let e1 = Complex::new(cos_p, sin_p);

    let mut phi = 0.0;
    let mut g_r = 0.0;
    let mut g_t = 0.0;
    let mut g_p = 0.0;
    let mut eim = Complex::ONE;
    for m in 0..=degree {
        let w = if m == 0 { 1.0 } else { 2.0 };
        for n in m..=degree {
            let c = coeffs[tri_index(n, m)] * eim;
            let nr = t.norm(n, m as i64);
            phi += w * c.re * nr * leg.p(n, m) * rp[n];
            if n >= 1 {
                // gradient terms carry r^{n-1}
                g_r += (n as f64) * w * c.re * nr * leg.p(n, m) * rp[n - 1];
                g_t += w * c.re * nr * leg.dp_dtheta(n, m) * rp[n - 1];
                if m >= 1 {
                    g_p += -2.0 * m as f64 * c.im * nr * leg.p_over_sin(n, m) * rp[n - 1];
                }
            }
        }
        eim *= e1;
    }
    let e_r = Vec3::new(sin_t * cos_p, sin_t * sin_p, cos_t);
    let e_t = Vec3::new(cos_t * cos_p, cos_t * sin_p, -sin_t);
    let e_p = Vec3::new(-sin_p, cos_p, 0.0);
    (phi, e_r * g_r + e_t * g_t + e_p * g_p)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic cluster without test-only dependencies.
    fn cluster(center: Vec3, radius: f64, n: usize, seed: u64) -> Vec<Particle> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| {
                let v = loop {
                    let v = Vec3::new(next() * 2.0 - 1.0, next() * 2.0 - 1.0, next() * 2.0 - 1.0);
                    if v.norm_sq() <= 1.0 {
                        break v;
                    }
                };
                Particle::new(center + v * radius, next() * 2.0 - 1.0)
            })
            .collect()
    }

    #[test]
    fn workspace_reuse_is_bit_identical_to_allocating_path() {
        // One workspace cycled through many degrees and both kernels must
        // reproduce the allocating wrappers exactly: reuse may never
        // perturb results.
        let center = Vec3::new(0.3, -0.2, 0.6);
        let ps = cluster(center, 0.5, 40, 5);
        let e = MultipoleExpansion::from_particles(center, 14, &ps);
        let mut ws = Workspace::new();
        for (degree, point) in [
            (14usize, Vec3::new(2.0, 1.0, -1.0)),
            (3, Vec3::new(-1.5, 2.0, 0.5)),
            (8, Vec3::new(0.3, -0.2, 3.0)),
            (0, Vec3::new(4.0, 4.0, 4.0)),
        ] {
            let pot_w = e.as_ref().potential_at_degree_with(point, degree, &mut ws);
            assert_eq!(
                pot_w,
                e.potential_at_degree(point, degree),
                "potential p={degree}"
            );
            let (phi_w, g_w) = e.as_ref().field_at_degree_with(point, degree, &mut ws);
            let (phi, g) = e.field_at_degree(point, degree);
            assert_eq!(phi_w, phi, "field potential p={degree}");
            assert_eq!(
                (g_w.x, g_w.y, g_w.z),
                (g.x, g.y, g.z),
                "gradient p={degree}"
            );
        }
    }

    #[test]
    fn p2m_into_matches_from_particles() {
        let center = Vec3::new(-0.1, 0.4, 0.2);
        let ps = cluster(center, 0.3, 25, 9);
        let degree = 10;
        let owned = MultipoleExpansion::from_particles(center, degree, &ps);
        let mut ws = Workspace::new();
        let mut buf = vec![Complex::new(7.0, -3.0); tri_len(degree)]; // stale garbage
        p2m_into(&mut buf, center, degree, &ps, &mut ws);
        assert_eq!(
            buf, owned.coeffs.c,
            "arena P2M must equal owned P2M bit for bit"
        );
        let r = ExpansionRef::new(center, degree, &buf);
        let point = Vec3::new(1.5, -1.0, 2.0);
        assert_eq!(
            r.potential_at_with(point, &mut ws),
            owned.potential_at(point)
        );
    }

    #[test]
    fn local_expansion_with_variants_match() {
        let ps = cluster(Vec3::new(5.0, 1.0, -2.0), 0.5, 20, 13);
        let mut ws = Workspace::new();
        let mut l = LocalExpansion::zero(Vec3::ZERO, 9);
        let mut l_ws = LocalExpansion::zero(Vec3::ZERO, 9);
        for p in &ps {
            l.add_distant_particle(p.charge, p.position);
            l_ws.add_distant_particle_with(p.charge, p.position, &mut ws);
        }
        assert_eq!(
            l.coeffs.c, l_ws.coeffs.c,
            "P2L with reused scratch must match"
        );
        let point = Vec3::new(0.2, -0.3, 0.25);
        assert_eq!(l.potential_at(point), l.potential_at_with(point, &mut ws));
        let (phi_a, g_a) = l.field_at(point);
        let (phi_b, g_b) = l.field_at_with(point, &mut ws);
        assert_eq!(phi_a, phi_b);
        assert_eq!((g_a.x, g_a.y, g_a.z), (g_b.x, g_b.y, g_b.z));
    }

    #[test]
    fn expansion_ref_coeff_matches_owned() {
        let center = Vec3::ZERO;
        let ps = cluster(center, 0.4, 15, 21);
        let e = MultipoleExpansion::from_particles(center, 6, &ps);
        let r = e.as_ref();
        assert_eq!(r.degree(), 6);
        assert_eq!(r.term_count(), 49);
        for n in 0..=8usize {
            for m in -(n as i64)..=(n as i64) {
                assert_eq!(r.coeff(n, m), e.coeff(n, m), "coeff ({n},{m})");
            }
        }
    }
}
