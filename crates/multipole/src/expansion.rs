//! Multipole and local expansions of the `1/r` kernel.
//!
//! Both expansion kinds store the triangular `m ≥ 0` half of their complex
//! coefficient array — the potential is real, so `C_n^{−m} = conj(C_n^m)` —
//! together with the expansion center and degree.
//!
//! * [`MultipoleExpansion`] represents the far field of a charge cluster:
//!   `Φ(P) = Σ_{n≤p} Σ_{|m|≤n} M_n^m Y_n^m(θ,φ) / r^{n+1}`,
//!   valid outside the sphere enclosing the sources.
//! * [`LocalExpansion`] represents the field of distant charges inside a
//!   sphere: `Φ(P) = Σ_{j≤p} Σ_{|k|≤j} L_j^k Y_j^k(θ,φ) r^j`.

use mbt_geometry::{Particle, Spherical, Vec3};

use crate::complex::Complex;
use crate::legendre::Legendre;
use crate::tables::{tri_index, tri_len, Tables, MAX_DEGREE};

/// Shared coefficient storage for both expansion kinds.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Coeffs {
    pub degree: usize,
    /// Triangular array, index `tri_index(n, m)` for `0 ≤ m ≤ n`.
    pub c: Vec<Complex>,
}

impl Coeffs {
    pub fn zero(degree: usize) -> Coeffs {
        assert!(
            degree <= MAX_DEGREE,
            "expansion degree {degree} exceeds MAX_DEGREE = {MAX_DEGREE}"
        );
        Coeffs { degree, c: vec![Complex::ZERO; tri_len(degree)] }
    }

    /// Coefficient for any `|m| ≤ n` via conjugate symmetry. Orders beyond
    /// the stored degree read as zero, which lets translation loops run to
    /// a larger target degree without bounds fiddling.
    #[inline(always)]
    pub fn get(&self, n: usize, m: i64) -> Complex {
        if n > self.degree || m.unsigned_abs() as usize > n {
            return Complex::ZERO;
        }
        let v = self.c[tri_index(n, m.unsigned_abs() as usize)];
        if m < 0 {
            v.conj()
        } else {
            v
        }
    }

    #[inline(always)]
    pub fn add(&mut self, n: usize, m: usize, v: Complex) {
        self.c[tri_index(n, m)] += v;
    }

    pub fn add_assign(&mut self, other: &Coeffs) {
        assert_eq!(self.degree, other.degree, "degree mismatch in expansion accumulate");
        for (a, b) in self.c.iter_mut().zip(&other.c) {
            *a += *b;
        }
    }

    pub fn max_abs(&self) -> f64 {
        self.c.iter().map(|v| v.norm()).fold(0.0, f64::max)
    }
}

/// Powers `rho^0 .. rho^degree`.
pub(crate) fn powers(rho: f64, degree: usize) -> Vec<f64> {
    let mut v = Vec::with_capacity(degree + 1);
    let mut acc = 1.0;
    for _ in 0..=degree {
        v.push(acc);
        acc *= rho;
    }
    v
}

/// A truncated multipole expansion about a center.
#[derive(Debug, Clone, PartialEq)]
pub struct MultipoleExpansion {
    pub(crate) center: Vec3,
    pub(crate) coeffs: Coeffs,
}

impl MultipoleExpansion {
    /// The zero expansion of the given degree.
    pub fn zero(center: Vec3, degree: usize) -> Self {
        MultipoleExpansion { center, coeffs: Coeffs::zero(degree) }
    }

    /// Builds the expansion of a particle set (P2M):
    /// `M_n^m = Σᵢ qᵢ ρᵢⁿ Y_n^{−m}(αᵢ, βᵢ)`.
    pub fn from_particles(center: Vec3, degree: usize, particles: &[Particle]) -> Self {
        let mut e = Self::zero(center, degree);
        for p in particles {
            e.add_particle(p.charge, p.position);
        }
        e
    }

    /// Accumulates one source charge into the expansion.
    #[allow(clippy::needless_range_loop)] // `n` indexes several degree-keyed arrays
    pub fn add_particle(&mut self, charge: f64, position: Vec3) {
        let degree = self.coeffs.degree;
        let s = Spherical::from_cartesian(position - self.center);
        let t = Tables::get();
        let (sin_t, cos_t) = s.theta.sin_cos();
        let leg = Legendre::new(degree, cos_t, sin_t);
        let rp = powers(s.rho, degree);
        // Y_n^{-m} = norm · P_n^m · e^{-imφ}
        let e1 = Complex::cis(-s.phi);
        let mut eim = Complex::ONE;
        for m in 0..=degree {
            for n in m..=degree {
                let re = charge * rp[n] * t.norm(n, m as i64) * leg.p(n, m);
                self.coeffs.add(n, m, eim * re);
            }
            eim *= e1;
        }
    }

    /// Expansion center.
    #[inline]
    pub fn center(&self) -> Vec3 {
        self.center
    }

    /// Truncation degree `p`.
    #[inline]
    pub fn degree(&self) -> usize {
        self.coeffs.degree
    }

    /// Number of real-valued series terms, `(p+1)²` — the unit the paper's
    /// Table 1 counts.
    #[inline]
    pub fn term_count(&self) -> u64 {
        let p = self.coeffs.degree as u64;
        (p + 1) * (p + 1)
    }

    /// Coefficient `M_n^m` for any `|m| ≤ n`.
    #[inline]
    pub fn coeff(&self, n: usize, m: i64) -> Complex {
        self.coeffs.get(n, m)
    }

    /// Adds another expansion with the same center and degree.
    pub fn accumulate(&mut self, other: &MultipoleExpansion) {
        assert!(
            self.center.distance(other.center) == 0.0,
            "cannot accumulate expansions about different centers"
        );
        self.coeffs.add_assign(&other.coeffs);
    }

    /// Evaluates the truncated series at an observation point (M2P).
    ///
    /// The point must be outside the sphere enclosing the sources for the
    /// result to approximate the true potential (Theorem 1 controls the
    /// error); the series itself is evaluated wherever `r > 0`.
    pub fn potential_at(&self, point: Vec3) -> f64 {
        self.potential_at_degree(point, self.coeffs.degree)
    }

    /// Evaluates only the degree-`degree` prefix of the series (M2P with
    /// per-interaction truncation).
    ///
    /// The paper computes "the multipole series a priori to the maximum
    /// required degree"; an individual interaction may then read only the
    /// prefix its own error budget requires. `degree` is clamped to the
    /// stored degree.
    #[allow(clippy::needless_range_loop)] // `n` indexes several degree-keyed arrays
    pub fn potential_at_degree(&self, point: Vec3, degree: usize) -> f64 {
        let degree = degree.min(self.coeffs.degree);
        let s = Spherical::from_cartesian(point - self.center);
        debug_assert!(s.rho > 0.0, "evaluation at the expansion center");
        let t = Tables::get();
        let (sin_t, cos_t) = s.theta.sin_cos();
        let leg = Legendre::new(degree, cos_t, sin_t);
        let inv_r = 1.0 / s.rho;
        let e1 = Complex::cis(s.phi);

        let mut phi = 0.0;
        let mut eim = Complex::ONE;
        // loop m-major so e^{imφ} is built incrementally
        let mut contributions = vec![0.0; degree + 1]; // per-degree partial sums
        for m in 0..=degree {
            let w = if m == 0 { 1.0 } else { 2.0 };
            for n in m..=degree {
                let c = self.coeffs.get(n, m as i64) * eim;
                contributions[n] += w * c.re * t.norm(n, m as i64) * leg.p(n, m);
            }
            eim *= e1;
        }
        let mut rpow = inv_r;
        for contrib in contributions.iter().take(degree + 1) {
            phi += contrib * rpow;
            rpow *= inv_r;
        }
        phi
    }

    /// Evaluates potential and gradient `∇Φ` at an observation point.
    ///
    /// Pole-safe: the azimuthal term uses `P_n^m / sin θ` arrays, never a
    /// division by `sin θ`.
    pub fn field_at(&self, point: Vec3) -> (f64, Vec3) {
        self.field_at_degree(point, self.coeffs.degree)
    }

    /// Potential and gradient using only the degree-`degree` prefix of the
    /// stored series (see [`MultipoleExpansion::potential_at_degree`]).
    pub fn field_at_degree(&self, point: Vec3, degree: usize) -> (f64, Vec3) {
        let degree = degree.min(self.coeffs.degree);
        let s = Spherical::from_cartesian(point - self.center);
        debug_assert!(s.rho > 0.0, "evaluation at the expansion center");
        let t = Tables::get();
        let (sin_t, cos_t) = s.theta.sin_cos();
        let (sin_p, cos_p) = s.phi.sin_cos();
        let leg = Legendre::new(degree, cos_t, sin_t);
        let inv_r = 1.0 / s.rho;
        let e1 = Complex::new(cos_p, sin_p);

        let mut pot_n = vec![0.0; degree + 1];
        let mut dth_n = vec![0.0; degree + 1];
        let mut dph_n = vec![0.0; degree + 1];
        let mut eim = Complex::ONE;
        for m in 0..=degree {
            let w = if m == 0 { 1.0 } else { 2.0 };
            for n in m..=degree {
                let c = self.coeffs.get(n, m as i64) * eim;
                let nr = t.norm(n, m as i64);
                pot_n[n] += w * c.re * nr * leg.p(n, m);
                dth_n[n] += w * c.re * nr * leg.dp_dtheta(n, m);
                if m >= 1 {
                    dph_n[n] += -2.0 * m as f64 * c.im * nr * leg.p_over_sin(n, m);
                }
            }
            eim *= e1;
        }
        let mut phi = 0.0;
        let mut g_r = 0.0;
        let mut g_t = 0.0;
        let mut g_p = 0.0;
        let mut rpow1 = inv_r; // r^{-(n+1)}
        for n in 0..=degree {
            let rpow2 = rpow1 * inv_r; // r^{-(n+2)}
            phi += pot_n[n] * rpow1;
            g_r += -((n + 1) as f64) * pot_n[n] * rpow2;
            g_t += dth_n[n] * rpow2;
            g_p += dph_n[n] * rpow2;
            rpow1 = rpow2;
        }
        let e_r = Vec3::new(sin_t * cos_p, sin_t * sin_p, cos_t);
        let e_t = Vec3::new(cos_t * cos_p, cos_t * sin_p, -sin_t);
        let e_p = Vec3::new(-sin_p, cos_p, 0.0);
        (phi, e_r * g_r + e_t * g_t + e_p * g_p)
    }

    /// Largest coefficient magnitude (diagnostics).
    pub fn max_coeff(&self) -> f64 {
        self.coeffs.max_abs()
    }
}

/// A truncated local expansion about a center.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalExpansion {
    pub(crate) center: Vec3,
    pub(crate) coeffs: Coeffs,
}

impl LocalExpansion {
    /// The zero expansion of the given degree.
    pub fn zero(center: Vec3, degree: usize) -> Self {
        LocalExpansion { center, coeffs: Coeffs::zero(degree) }
    }

    /// Builds the local expansion of distant point sources directly (P2L):
    /// `L_j^k = Σᵢ qᵢ Y_j^{−k}(αᵢ, βᵢ) / ρᵢ^{j+1}`.
    ///
    /// Valid for observation points closer to the center than every source.
    pub fn from_distant_particles(center: Vec3, degree: usize, particles: &[Particle]) -> Self {
        let mut e = Self::zero(center, degree);
        for p in particles {
            e.add_distant_particle(p.charge, p.position);
        }
        e
    }

    /// Accumulates a single distant source (P2L).
    #[allow(clippy::needless_range_loop)] // `n` indexes several degree-keyed arrays
    pub fn add_distant_particle(&mut self, charge: f64, position: Vec3) {
        let degree = self.coeffs.degree;
        let s = Spherical::from_cartesian(position - self.center);
        assert!(s.rho > 0.0, "P2L source at the local center");
        let t = Tables::get();
        let (sin_t, cos_t) = s.theta.sin_cos();
        let leg = Legendre::new(degree, cos_t, sin_t);
        let inv = 1.0 / s.rho;
        let invp = powers(inv, degree + 1);
        let e1 = Complex::cis(-s.phi);
        let mut eim = Complex::ONE;
        for m in 0..=degree {
            for n in m..=degree {
                let re = charge * invp[n + 1] * t.norm(n, m as i64) * leg.p(n, m);
                self.coeffs.add(n, m, eim * re);
            }
            eim *= e1;
        }
    }

    /// Expansion center.
    #[inline]
    pub fn center(&self) -> Vec3 {
        self.center
    }

    /// Truncation degree `p`.
    #[inline]
    pub fn degree(&self) -> usize {
        self.coeffs.degree
    }

    /// Coefficient `L_j^k` for any `|k| ≤ j`.
    #[inline]
    pub fn coeff(&self, j: usize, k: i64) -> Complex {
        self.coeffs.get(j, k)
    }

    /// Adds another expansion with the same center and degree.
    pub fn accumulate(&mut self, other: &LocalExpansion) {
        assert!(
            self.center.distance(other.center) == 0.0,
            "cannot accumulate expansions about different centers"
        );
        self.coeffs.add_assign(&other.coeffs);
    }

    /// Evaluates the local series at a point (L2P).
    #[allow(clippy::needless_range_loop)] // `n` indexes several degree-keyed arrays
    pub fn potential_at(&self, point: Vec3) -> f64 {
        let degree = self.coeffs.degree;
        let s = Spherical::from_cartesian(point - self.center);
        let t = Tables::get();
        let (sin_t, cos_t) = s.theta.sin_cos();
        let leg = Legendre::new(degree, cos_t, sin_t);
        let rp = powers(s.rho, degree);
        let e1 = Complex::cis(s.phi);
        let mut eim = Complex::ONE;
        let mut phi = 0.0;
        for m in 0..=degree {
            let w = if m == 0 { 1.0 } else { 2.0 };
            for n in m..=degree {
                let c = self.coeffs.get(n, m as i64) * eim;
                phi += w * c.re * t.norm(n, m as i64) * leg.p(n, m) * rp[n];
            }
            eim *= e1;
        }
        phi
    }

    /// Evaluates potential and gradient at a point (L2P with derivatives).
    pub fn field_at(&self, point: Vec3) -> (f64, Vec3) {
        let degree = self.coeffs.degree;
        let s = Spherical::from_cartesian(point - self.center);
        let t = Tables::get();
        let (sin_t, cos_t) = s.theta.sin_cos();
        let (sin_p, cos_p) = s.phi.sin_cos();
        let leg = Legendre::new(degree, cos_t, sin_t);
        let rp = powers(s.rho, degree);
        let e1 = Complex::new(cos_p, sin_p);

        let mut phi = 0.0;
        let mut g_r = 0.0;
        let mut g_t = 0.0;
        let mut g_p = 0.0;
        let mut eim = Complex::ONE;
        for m in 0..=degree {
            let w = if m == 0 { 1.0 } else { 2.0 };
            for n in m..=degree {
                let c = self.coeffs.get(n, m as i64) * eim;
                let nr = t.norm(n, m as i64);
                phi += w * c.re * nr * leg.p(n, m) * rp[n];
                if n >= 1 {
                    // gradient terms carry r^{n-1}
                    g_r += (n as f64) * w * c.re * nr * leg.p(n, m) * rp[n - 1];
                    g_t += w * c.re * nr * leg.dp_dtheta(n, m) * rp[n - 1];
                    if m >= 1 {
                        g_p += -2.0 * m as f64 * c.im * nr * leg.p_over_sin(n, m) * rp[n - 1];
                    }
                }
            }
            eim *= e1;
        }
        let e_r = Vec3::new(sin_t * cos_p, sin_t * sin_p, cos_t);
        let e_t = Vec3::new(cos_t * cos_p, cos_t * sin_p, -sin_t);
        let e_p = Vec3::new(-sin_p, cos_p, 0.0);
        (phi, e_r * g_r + e_t * g_t + e_p * g_p)
    }

    /// Largest coefficient magnitude (diagnostics).
    pub fn max_coeff(&self) -> f64 {
        self.coeffs.max_abs()
    }
}
