//! Spherical harmonics `Y_n^m` in the Greengard–Rokhlin normalisation.
//!
//! ```text
//! Y_n^m(θ,φ) = √((n−|m|)!/(n+|m|)!) · P_n^{|m|}(cos θ) · e^{imφ}
//! ```
//!
//! with `P_n^m` from [`crate::legendre`] (no Condon–Shortley phase). This is
//! exactly the normalisation for which `1/|P−Q|` expands with unit
//! coefficients (the addition theorem
//! `P_n(cos γ) = Σ_m Y_n^{−m}(α,β) Y_n^m(θ,φ)` holds), so multipole
//! coefficients are simply `q ρ^n Y_n^{−m}`.

use mbt_geometry::Spherical;

use crate::complex::Complex;
use crate::legendre::Legendre;
use crate::tables::{tri_index, tri_len, Tables};

/// Triangular array of `Y_n^m(θ,φ)` for `0 ≤ m ≤ n ≤ degree`
/// (negative orders via `Y_n^{−m} = conj(Y_n^m)`).
#[derive(Debug, Clone)]
pub struct Harmonics {
    degree: usize,
    vals: Vec<Complex>,
}

impl Harmonics {
    /// Evaluates all harmonics up to `degree` at the direction of `s`.
    #[must_use]
    pub fn new(degree: usize, s: &Spherical) -> Harmonics {
        let (sin_t, cos_t) = s.theta.sin_cos();
        Self::from_angles(degree, cos_t, sin_t, s.phi)
    }

    /// Evaluates from `cos θ`, `sin θ`, `φ` directly.
    #[must_use]
    pub fn from_angles(degree: usize, cos_t: f64, sin_t: f64, phi: f64) -> Harmonics {
        let t = Tables::get();
        let leg = Legendre::new(degree, cos_t, sin_t);
        // lint: allow(alloc, owned-harmonics constructor; kernels evaluate in-workspace)
        let mut vals = vec![Complex::ZERO; tri_len(degree)];
        // e^{imφ} by iterated multiplication
        let e1 = Complex::cis(phi);
        let mut eim = Complex::ONE;
        for m in 0..=degree {
            for n in m..=degree {
                let re = t.norm(n, m as i64) * leg.p(n, m);
                vals[tri_index(n, m)] = eim * re;
            }
            eim *= e1;
        }
        Harmonics { degree, vals }
    }

    /// The degree the table was computed to.
    #[inline]
    #[must_use]
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// `Y_n^m` for any `|m| ≤ n ≤ degree`.
    #[inline(always)]
    #[must_use]
    pub fn y(&self, n: usize, m: i64) -> Complex {
        let v = self.vals[tri_index(n, m.unsigned_abs() as usize)];
        if m < 0 {
            v.conj()
        } else {
            v
        }
    }
}

/// Legendre polynomial `P_n(x)` (order zero), used by tests and the
/// classical `1/|P−Q|` expansion checks.
#[must_use]
pub fn legendre_p(n: usize, x: f64) -> f64 {
    match n {
        0 => 1.0,
        1 => x,
        _ => {
            let mut p0 = 1.0;
            let mut p1 = x;
            for k in 2..=n {
                let p2 = ((2 * k - 1) as f64 * x * p1 - (k - 1) as f64 * p0) / k as f64;
                p0 = p1;
                p1 = p2;
            }
            p1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbt_geometry::Vec3;

    fn harmonics_of(v: Vec3, degree: usize) -> (Harmonics, Spherical) {
        let s = Spherical::from_cartesian(v);
        (Harmonics::new(degree, &s), s)
    }

    #[test]
    fn y00_is_one_everywhere() {
        for v in [Vec3::X, Vec3::new(1.0, -2.0, 0.5), Vec3::Z] {
            let (h, _) = harmonics_of(v, 3);
            assert!((h.y(0, 0) - Complex::ONE).norm() < 1e-15);
        }
    }

    #[test]
    fn closed_forms_degree_one() {
        // Y_1^0 = cosθ, Y_1^1 = (1/√2) sinθ e^{iφ}
        let v = Vec3::new(0.3, -0.7, 0.9);
        let (h, s) = harmonics_of(v, 1);
        assert!((h.y(1, 0).re - s.theta.cos()).abs() < 1e-14);
        let expect = Complex::cis(s.phi) * (s.theta.sin() / 2.0f64.sqrt());
        assert!((h.y(1, 1) - expect).norm() < 1e-14);
    }

    #[test]
    fn negative_orders_are_conjugates() {
        let (h, _) = harmonics_of(Vec3::new(1.0, 2.0, -0.5), 6);
        for n in 0..=6usize {
            for m in 1..=n as i64 {
                assert_eq!(h.y(n, -m), h.y(n, m).conj());
            }
        }
    }

    #[test]
    fn addition_theorem() {
        // P_n(cos γ) = Σ_{m=-n}^{n} Y_n^{-m}(dir1) Y_n^m(dir2)
        let a = Vec3::new(0.2, 0.9, -0.4).normalized();
        let b = Vec3::new(-0.5, 0.1, 0.85).normalized();
        let cos_gamma = a.dot(b);
        let (ha, _) = harmonics_of(a, 8);
        let (hb, _) = harmonics_of(b, 8);
        for n in 0..=8usize {
            let mut sum = Complex::ZERO;
            for m in -(n as i64)..=(n as i64) {
                sum += ha.y(n, -m) * hb.y(n, m);
            }
            let expect = legendre_p(n, cos_gamma);
            assert!(
                (sum.re - expect).abs() < 1e-12 && sum.im.abs() < 1e-12,
                "addition theorem fails at n={n}: {sum:?} vs {expect}"
            );
        }
    }

    #[test]
    fn inverse_distance_expansion() {
        // 1/|P−Q| = Σ_n ρ^n/r^{n+1} P_n(cos γ) for r > ρ — the identity
        // underlying Theorem 1 of the paper.
        let q = Vec3::new(0.3, -0.2, 0.1); // source, ρ = |q|
        let p = Vec3::new(2.0, 1.0, -1.5); // target, r = |p|
        let rho = q.norm();
        let r = p.norm();
        let cos_gamma = p.dot(q) / (r * rho);
        let mut approx = 0.0;
        for n in 0..=30 {
            approx += rho.powi(n as i32) / r.powi(n as i32 + 1) * legendre_p(n, cos_gamma);
        }
        let exact = 1.0 / p.distance(q);
        assert!((approx - exact).abs() < 1e-12, "{approx} vs {exact}");
    }

    #[test]
    fn legendre_p_closed_forms() {
        let x = 0.37;
        assert_eq!(legendre_p(0, x), 1.0);
        assert_eq!(legendre_p(1, x), x);
        assert!((legendre_p(2, x) - 0.5 * (3.0 * x * x - 1.0)).abs() < 1e-15);
        assert!((legendre_p(3, x) - 0.5 * (5.0 * x.powi(3) - 3.0 * x)).abs() < 1e-15);
        // |P_n(x)| <= 1 on [-1,1]
        for n in 0..20 {
            assert!(legendre_p(n, 0.99).abs() <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn poles_are_finite() {
        let (h, _) = harmonics_of(Vec3::Z, 10);
        for n in 0..=10usize {
            assert!((h.y(n, 0).re - 1.0).abs() < 1e-13); // P_n(1) = 1
            for m in 1..=n as i64 {
                assert!(h.y(n, m).norm() < 1e-13); // vanish at the pole
            }
        }
    }
}
