//! Associated Legendre functions and their θ-derivatives.
//!
//! `P_n^m` here is defined **without** the Condon–Shortley phase:
//!
//! ```text
//! P_m^m(x)   = (2m−1)!! (1−x²)^{m/2}
//! P_{m+1}^m  = x (2m+1) P_m^m
//! (n−m) P_n^m = x (2n−1) P_{n−1}^m − (n+m−1) P_{n−2}^m
//! ```
//!
//! For the gradient of a multipole series two auxiliary families make the
//! evaluation pole-safe (no division by `sin θ` anywhere):
//!
//! * `S_n^m = P_n^m / sin θ` for `m ≥ 1` — satisfies the *same* recurrences
//!   seeded with `S_m^m = (2m−1)!! sinθ^{m−1}`, needed by the azimuthal
//!   gradient term `m P_n^m / sin θ`,
//! * `dP_n^m/dθ`, computed as `n·x·S_n^m − (n+m)·S_{n−1}^m` for `m ≥ 1` and
//!   `−P_n^1` for `m = 0`.

use crate::tables::{tri_index, tri_len};

/// Triangular arrays of `P_n^m(cos θ)` (and friends) for `n ≤ degree`.
#[derive(Debug, Clone)]
pub struct Legendre {
    degree: usize,
    /// `P_n^m(x)`.
    p: Vec<f64>,
    /// `P_n^m(x)/sin θ` for `m ≥ 1` (entries with `m = 0` are unused zeros).
    p_over_s: Vec<f64>,
    /// `dP_n^m/dθ`.
    dp_dtheta: Vec<f64>,
}

impl Legendre {
    /// Evaluates the three families at `x = cos θ`, `s = sin θ ≥ 0`.
    #[must_use]
    pub fn new(degree: usize, x: f64, s: f64) -> Legendre {
        let mut l = Legendre::with_capacity(degree);
        l.recompute(degree, x, s);
        l
    }

    /// An empty table whose buffers are pre-sized for `degree`; call
    /// [`Legendre::recompute`] before reading any values.
    #[must_use]
    pub fn with_capacity(degree: usize) -> Legendre {
        let len = tri_len(degree);
        Legendre {
            degree,
            // lint: allow(alloc, table construction; recompute() reuses these buffers)
            p: vec![0.0; len],
            p_over_s: vec![0.0; len], // lint: allow(alloc, table construction)
            dp_dtheta: vec![0.0; len], // lint: allow(alloc, table construction)
        }
    }

    /// Re-evaluates the three families at `x = cos θ`, `s = sin θ ≥ 0`,
    /// reusing the existing buffers. Allocation-free once the buffers have
    /// grown to the largest degree seen (they grow monotonically and never
    /// shrink).
    ///
    /// Every entry with `n ≤ degree` is overwritten before it can be read
    /// (the triangular index layout is capacity-independent), so no
    /// zeroing pass is needed.
    pub fn recompute(&mut self, degree: usize, x: f64, s: f64) {
        debug_assert!((x * x + s * s - 1.0).abs() < 1e-9, "cos²+sin² must be 1");
        let len = tri_len(degree);
        if self.p.len() < len {
            self.p.resize(len, 0.0);
            self.p_over_s.resize(len, 0.0);
            self.dp_dtheta.resize(len, 0.0);
        }
        self.degree = degree;
        let p = &mut self.p[..];
        let q = &mut self.p_over_s[..]; // P/s for m>=1
        let d = &mut self.dp_dtheta[..];

        // diagonal seeds
        p[tri_index(0, 0)] = 1.0;
        let mut pmm = 1.0; // P_m^m
        let mut smm = 1.0; // S_m^m = P_m^m / s  (for m>=1: (2m-1)!! s^{m-1})
        for m in 1..=degree {
            let df = (2 * m - 1) as f64;
            smm = if m == 1 { df } else { smm * df * s };
            pmm *= df * s;
            p[tri_index(m, m)] = pmm;
            q[tri_index(m, m)] = smm;
        }
        // first off-diagonal P_{m+1}^m = x(2m+1) P_m^m
        for m in 0..degree {
            let f = x * (2 * m + 1) as f64;
            p[tri_index(m + 1, m)] = f * p[tri_index(m, m)];
            if m >= 1 {
                q[tri_index(m + 1, m)] = f * q[tri_index(m, m)];
            }
        }
        // upward recurrence in n
        for n in 2..=degree {
            for m in 0..=(n - 2) {
                let a = x * (2 * n - 1) as f64;
                let b = (n + m - 1) as f64;
                let c = (n - m) as f64;
                p[tri_index(n, m)] = (a * p[tri_index(n - 1, m)] - b * p[tri_index(n - 2, m)]) / c;
                if m >= 1 {
                    q[tri_index(n, m)] =
                        (a * q[tri_index(n - 1, m)] - b * q[tri_index(n - 2, m)]) / c;
                }
            }
        }
        // θ-derivatives
        for n in 0..=degree {
            // m = 0: dP_n^0/dθ = −P_n^1 (absent for n = 0)
            d[tri_index(n, 0)] = if n >= 1 { -p[tri_index(n, 1)] } else { 0.0 };
            for m in 1..=n {
                let prev = if n >= 1 && m < n {
                    q[tri_index(n - 1, m)]
                } else {
                    0.0
                };
                d[tri_index(n, m)] = n as f64 * x * q[tri_index(n, m)] - (n + m) as f64 * prev;
            }
        }
    }

    /// The degree the arrays were computed to.
    #[inline]
    #[must_use]
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// `P_n^m(cos θ)`.
    #[inline(always)]
    #[must_use]
    pub fn p(&self, n: usize, m: usize) -> f64 {
        self.p[tri_index(n, m)]
    }

    /// `P_n^m(cos θ)/sin θ` (only valid for `m ≥ 1`).
    #[inline(always)]
    #[must_use]
    pub fn p_over_sin(&self, n: usize, m: usize) -> f64 {
        debug_assert!(m >= 1);
        self.p_over_s[tri_index(n, m)]
    }

    /// `dP_n^m/dθ`.
    #[inline(always)]
    #[must_use]
    pub fn dp_dtheta(&self, n: usize, m: usize) -> f64 {
        self.dp_dtheta[tri_index(n, m)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn legendre_at(theta: f64, degree: usize) -> Legendre {
        Legendre::new(degree, theta.cos(), theta.sin())
    }

    #[test]
    fn closed_forms_low_degree() {
        let theta = 0.8f64;
        let (x, s) = (theta.cos(), theta.sin());
        let l = legendre_at(theta, 3);
        assert!((l.p(0, 0) - 1.0).abs() < 1e-15);
        assert!((l.p(1, 0) - x).abs() < 1e-15);
        assert!((l.p(1, 1) - s).abs() < 1e-15);
        assert!((l.p(2, 0) - 0.5 * (3.0 * x * x - 1.0)).abs() < 1e-14);
        assert!((l.p(2, 1) - 3.0 * x * s).abs() < 1e-14);
        assert!((l.p(2, 2) - 3.0 * s * s).abs() < 1e-14);
        assert!((l.p(3, 0) - 0.5 * (5.0 * x.powi(3) - 3.0 * x)).abs() < 1e-14);
        assert!((l.p(3, 3) - 15.0 * s.powi(3)).abs() < 1e-13);
    }

    #[test]
    fn p_over_sin_consistent() {
        let theta = 1.1f64;
        let l = legendre_at(theta, 8);
        for n in 1..=8usize {
            for m in 1..=n {
                let expect = l.p(n, m) / theta.sin();
                assert!(
                    (l.p_over_sin(n, m) - expect).abs() < 1e-10 * (1.0 + expect.abs()),
                    "S mismatch at ({n},{m})"
                );
            }
        }
    }

    #[test]
    fn dp_dtheta_matches_finite_differences() {
        let theta = 0.9f64;
        let h = 1e-6;
        let l = legendre_at(theta, 10);
        let lp = legendre_at(theta + h, 10);
        let lm = legendre_at(theta - h, 10);
        for n in 0..=10usize {
            for m in 0..=n {
                let fd = (lp.p(n, m) - lm.p(n, m)) / (2.0 * h);
                let an = l.dp_dtheta(n, m);
                assert!(
                    (fd - an).abs() < 1e-5 * (1.0 + an.abs()),
                    "dP/dθ mismatch at ({n},{m}): fd {fd} vs {an}"
                );
            }
        }
    }

    #[test]
    fn pole_values_are_finite_and_correct() {
        // θ = 0: P_n^0 = 1, P_n^m = 0 (m≥1), S_n^1 finite, derivative of
        // P_n^1 is finite nonzero
        let l = Legendre::new(6, 1.0, 0.0);
        for n in 0..=6usize {
            assert!((l.p(n, 0) - 1.0).abs() < 1e-14);
            for m in 1..=n {
                assert_eq!(l.p(n, m), 0.0);
                assert!(l.p_over_sin(n, m).is_finite());
                assert!(l.dp_dtheta(n, m).is_finite());
            }
        }
        // S_1^1(θ=0) = 1: P_1^1 = sinθ so P/s -> 1
        assert!((l.p_over_sin(1, 1) - 1.0).abs() < 1e-14);
        // dP_1^1/dθ at 0 is cosθ·1 = 1
        assert!((l.dp_dtheta(1, 1) - 1.0).abs() < 1e-14);
    }

    #[test]
    fn antipode_parity() {
        // P_n^m(−x) = (−1)^{n+m} P_n^m(x)
        let theta = 0.6f64;
        let l1 = Legendre::new(7, theta.cos(), theta.sin());
        let l2 = Legendre::new(7, -theta.cos(), theta.sin());
        for n in 0..=7usize {
            for m in 0..=n {
                let sign = if (n + m) % 2 == 0 { 1.0 } else { -1.0 };
                assert!(
                    (l2.p(n, m) - sign * l1.p(n, m)).abs() < 1e-10 * (1.0 + l1.p(n, m).abs()),
                    "parity fails at ({n},{m})"
                );
            }
        }
    }

    #[test]
    fn recompute_reuse_is_bit_identical_to_fresh() {
        // a buffer that has seen a larger degree must reproduce a fresh
        // evaluation exactly — stale high-degree entries are never read
        let mut reused = Legendre::new(14, 0.9f64.cos(), 0.9f64.sin());
        for (degree, theta) in [(3usize, 0.4f64), (8, 1.3), (14, 2.0), (1, 0.01)] {
            reused.recompute(degree, theta.cos(), theta.sin());
            let fresh = Legendre::new(degree, theta.cos(), theta.sin());
            assert_eq!(reused.degree(), fresh.degree());
            for n in 0..=degree {
                for m in 0..=n {
                    assert_eq!(reused.p(n, m), fresh.p(n, m), "p({n},{m})");
                    assert_eq!(reused.dp_dtheta(n, m), fresh.dp_dtheta(n, m), "d({n},{m})");
                    if m >= 1 {
                        assert_eq!(
                            reused.p_over_sin(n, m),
                            fresh.p_over_sin(n, m),
                            "q({n},{m})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn high_degree_stays_finite() {
        let l = legendre_at(0.3, 40);
        for n in 0..=40usize {
            for m in 0..=n {
                assert!(l.p(n, m).is_finite(), "P({n},{m}) overflowed");
            }
        }
    }
}
