//! Spherical-harmonic multipole machinery for `1/r` potentials.
//!
//! This crate implements, from scratch, everything Theorem 1 of
//! *Analyzing the Error Bounds of Multipole-Based Treecodes* (Sarin, Grama
//! & Sameh, SC 1998) builds on:
//!
//! * [`MultipoleExpansion`] / [`LocalExpansion`] of point-charge clusters,
//! * the operator set P2M, M2M, M2L, L2L, M2P, L2P (potential **and**
//!   gradient evaluation),
//! * the truncation-error bounds of Theorems 1 and 2 and the paper's
//!   adaptive degree-selection rule (Theorem 3) in [`bounds`].
//!
//! Every operator is validated against direct summation in the test suite;
//! the error bounds are validated as actual bounds (no observed error may
//! exceed them).
//!
//! # Example
//!
//! ```
//! use mbt_geometry::{Particle, Vec3};
//! use mbt_multipole::MultipoleExpansion;
//!
//! let cluster = [
//!     Particle::new(Vec3::new(0.1, 0.0, 0.0), 1.0),
//!     Particle::new(Vec3::new(-0.1, 0.05, 0.0), -2.0),
//! ];
//! let expansion = MultipoleExpansion::from_particles(Vec3::ZERO, 8, &cluster);
//! let far = Vec3::new(3.0, 1.0, 0.0);
//! let exact: f64 = cluster
//!     .iter()
//!     .map(|p| p.charge / p.position.distance(far))
//!     .sum();
//! assert!((expansion.potential_at(far) - exact).abs() < 1e-9);
//! ```

// `unsafe` is denied crate-wide rather than forbidden: the `simd` module
// needs `#[target_feature]` dispatch internally and opts back in with a
// module-scoped `allow` — no `unsafe` appears (or is needed) anywhere else,
// and none leaks past the `simd` module boundary.
#![deny(unsafe_code)]

pub mod batch;
pub mod bounds;
pub mod complex;
pub mod expansion;
pub mod harmonics;
pub mod legendre;
pub mod simd;
pub mod tables;
mod translation;
pub mod workspace;

pub use batch::{
    m2l_apply, m2p_field_group, m2p_field_group_uniform, m2p_potential_group,
    m2p_potential_group_uniform, p2p_field_span_guarded, p2p_field_span_guarded_f32,
    p2p_potential_span, p2p_potential_span_f32, p2p_potential_span_guarded,
    p2p_potential_span_guarded_f32, BatchWorkspace, M2pGroup, M2L_LANES, M2P_LANES, P2P_LANES,
    P2P_LANES_F32,
};
pub use bounds::{
    degree_for_tolerance, degree_for_tolerance_at, kappa, theorem1_bound, theorem2_bound,
    DegreeSelector, DegreeWeighting,
};
pub use complex::Complex;
pub use expansion::{
    l2p_field_with, l2p_potential_with, p2m_into, ExpansionRef, LocalExpansion, MultipoleExpansion,
};
pub use harmonics::Harmonics;
pub use simd::{F32Lanes, F64Lanes, SimdLevel};
pub use tables::{coeff_bytes, tri_len, MAX_DEGREE};
pub use workspace::Workspace;
