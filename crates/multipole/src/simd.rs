//! Portable explicit-SIMD layer: lane types, CPU dispatch, and the only
//! `unsafe` in the crate.
//!
//! The batch kernels ([`crate::batch`]) are written against two
//! primitives from this module:
//!
//! * **Lane types** [`F64Lanes<N>`] / [`F32Lanes<N>`] — thin
//!   `[f; N]` newtypes whose arithmetic is expressed as straight-line
//!   elementwise loops over a compile-time constant `N`. Every op is
//!   `#[inline(always)]`, so inside a kernel monomorphized for a given
//!   width the optimizer sees plain unrolled arithmetic on fixed-size
//!   arrays — the canonical shape LLVM lowers to full-width vector
//!   registers.
//! * **Dispatch** [`dispatch`] — runs a closure inside a wrapper
//!   compiled with the widest instruction set the running CPU supports
//!   (`#[target_feature]`), selected once at runtime. The closure is the
//!   monomorphized kernel body; inlining it into the wrapper gives the
//!   vectorizer AVX2/AVX-512 even when the crate's baseline target is
//!   plain x86-64. [`SimdLevel`] also fixes the lane *widths* the batch
//!   layer uses ([`m2p_lanes`], [`p2p_lanes_f64`], [`p2p_lanes_f32`]),
//!   so wider hardware gets wider degree buckets, not just wider
//!   instructions.
//!
//! No intrinsics are called directly: the `unsafe` here is exactly the
//! calls to the `#[target_feature]` wrappers, each guarded by the runtime
//! probe that proved the features present. Nothing `unsafe` is exported,
//! and the scalar fallback (forced by the `force-scalar` cargo feature,
//! by [`set_level`], or by running under Miri) executes the identical
//! generic code at the narrow baseline widths.
#![allow(unsafe_code)]

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};
use std::sync::atomic::{AtomicU8, Ordering};

/// Instruction-set tier selected by runtime CPU detection.
///
/// The tier decides both which `#[target_feature]` wrapper [`dispatch`]
/// routes kernel bodies through and which lane widths the batch layer
/// assembles its groups with. `Scalar` is the portable fallback: the
/// same generic kernels at the baseline widths with no feature-gated
/// codegen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimdLevel {
    /// Baseline codegen, narrow lanes (4×f64 / 8×f32).
    Scalar,
    /// AVX2 + FMA: 256-bit registers, 4×f64 / 8×f32 lanes.
    Avx2,
    /// AVX-512 (F/DQ/VL): 512-bit registers, 8×f64 / 16×f32 lanes.
    Avx512,
}

impl SimdLevel {
    /// Stable machine-readable name (bench metadata, logs).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Avx512 => "avx512",
        }
    }

    /// f64 lane width for the M2P group kernels at this tier.
    #[must_use]
    pub fn m2p_lanes(self) -> usize {
        match self {
            SimdLevel::Scalar | SimdLevel::Avx2 => 4,
            SimdLevel::Avx512 => 8,
        }
    }

    /// f64 accumulator width for the P2P span kernels at this tier.
    #[must_use]
    pub fn p2p_lanes_f64(self) -> usize {
        match self {
            SimdLevel::Scalar | SimdLevel::Avx2 => 4,
            SimdLevel::Avx512 => 8,
        }
    }

    /// f32 accumulator width for the P2P span kernels at this tier.
    #[must_use]
    pub fn p2p_lanes_f32(self) -> usize {
        match self {
            SimdLevel::Scalar | SimdLevel::Avx2 => 8,
            SimdLevel::Avx512 => 16,
        }
    }

    fn rank(self) -> u8 {
        match self {
            SimdLevel::Scalar => 1,
            SimdLevel::Avx2 => 2,
            SimdLevel::Avx512 => 3,
        }
    }

    fn from_rank(rank: u8) -> SimdLevel {
        match rank {
            3 => SimdLevel::Avx512,
            2 => SimdLevel::Avx2,
            _ => SimdLevel::Scalar,
        }
    }
}

/// Cached dispatch decision: 0 = undetected, otherwise `SimdLevel::rank`.
static LEVEL: AtomicU8 = AtomicU8::new(0);

/// Probes the running CPU, ignoring the cache and any override.
#[must_use]
pub fn detect() -> SimdLevel {
    // Miri interprets rather than executes; keep it (and the scheduled CI
    // miri job) on the deterministic portable path.
    #[cfg(miri)]
    {
        SimdLevel::Scalar
    }
    #[cfg(all(not(miri), target_arch = "x86_64"))]
    {
        if std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512dq")
            && std::arch::is_x86_feature_detected!("avx512vl")
            && std::arch::is_x86_feature_detected!("fma")
        {
            SimdLevel::Avx512
        } else if std::arch::is_x86_feature_detected!("avx2")
            && std::arch::is_x86_feature_detected!("fma")
        {
            SimdLevel::Avx2
        } else {
            SimdLevel::Scalar
        }
    }
    #[cfg(all(not(miri), not(target_arch = "x86_64")))]
    {
        SimdLevel::Scalar
    }
}

/// The dispatch tier in effect: detected once, cached, and clamped to
/// `Scalar` when the `force-scalar` feature is on.
#[must_use]
pub fn level() -> SimdLevel {
    if cfg!(feature = "force-scalar") {
        return SimdLevel::Scalar;
    }
    // ordering: Relaxed — the rank is a self-contained value; redundant detection races are benign
    let cached = LEVEL.load(Ordering::Relaxed);
    if cached != 0 {
        return SimdLevel::from_rank(cached);
    }
    let detected = detect();
    // ordering: Relaxed — idempotent cache fill; every detector writes the same rank
    LEVEL.store(detected.rank(), Ordering::Relaxed);
    detected
}

/// Overrides the dispatch tier (benchmark column sweeps, fallback tests).
///
/// The request is clamped to what [`detect`] proves safe, so asking for
/// AVX-512 on an AVX2 machine yields AVX2; the applied tier is returned.
/// Under `force-scalar` the override is recorded but [`level`] keeps
/// answering `Scalar`. Takes effect for *subsequent* sweeps: a kernel
/// dispatch in flight keeps the width it started with.
pub fn set_level(requested: SimdLevel) -> SimdLevel {
    let applied = SimdLevel::from_rank(requested.rank().min(detect().rank()));
    // ordering: Relaxed — the rank is a self-contained value; in-flight dispatches keep their width
    LEVEL.store(applied.rank(), Ordering::Relaxed);
    if cfg!(feature = "force-scalar") {
        SimdLevel::Scalar
    } else {
        applied
    }
}

/// Dispatched f64 lane width for M2P group kernels.
#[must_use]
pub fn m2p_lanes() -> usize {
    level().m2p_lanes()
}

/// Hardware f64 register width the P2P span kernels lower to. The
/// kernels always run the fixed logical width
/// [`crate::batch::P2P_LANES`]; this only reports how many of those
/// lanes fit one register at the dispatched level.
#[must_use]
pub fn p2p_lanes_f64() -> usize {
    level().p2p_lanes_f64()
}

/// Hardware f32 register width the P2P span kernels lower to (logical
/// width is [`crate::batch::P2P_LANES_F32`]; see [`p2p_lanes_f64`]).
#[must_use]
pub fn p2p_lanes_f32() -> usize {
    level().p2p_lanes_f32()
}

/// Runs `f` inside the widest `#[target_feature]` wrapper the CPU
/// supports, so the inlined closure body is compiled with that
/// instruction set. The closure must not capture anything whose code
/// depends on the ambient target features (plain arithmetic kernels do
/// not). Safe to call from any thread; the tier is read once.
#[inline]
pub fn dispatch<R>(f: impl FnOnce() -> R) -> R {
    match level() {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx512 => {
            // SAFETY: `level()` reports Avx512 only after runtime feature
            // detection confirmed avx512f/dq/vl+fma (overrides are clamped).
            unsafe { dispatch_avx512(f) }
        }
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => {
            // SAFETY: `level()` reports Avx2 only after runtime feature
            // detection confirmed avx2+fma (overrides are clamped).
            unsafe { dispatch_avx2(f) }
        }
        _ => f(),
    }
}

// SAFETY: caller guarantees avx512f/dq/vl+fma (checked in `dispatch`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512dq,avx512vl,avx2,fma")]
unsafe fn dispatch_avx512<R>(f: impl FnOnce() -> R) -> R {
    f()
}

// SAFETY: caller guarantees avx2+fma (checked in `dispatch`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn dispatch_avx2<R>(f: impl FnOnce() -> R) -> R {
    f()
}

/// `N` f64 lanes with elementwise arithmetic.
///
/// A `repr(transparent)` newtype over `[f64; N]`: every op is an
/// `#[inline(always)]` fixed-trip-count loop, the shape LLVM reliably
/// lowers to vector registers inside a [`dispatch`]ed kernel. Arithmetic
/// is plain (no FMA contraction), so lane `l` of any expression is
/// bit-identical to evaluating the same scalar expression on lane `l`
/// alone — the property the batch layer's lane-independence and
/// padded-tail contracts rest on.
#[derive(Debug, Clone, Copy, PartialEq)]
#[repr(transparent)]
pub struct F64Lanes<const N: usize>(pub [f64; N]);

/// `N` f32 lanes with elementwise arithmetic; see [`F64Lanes`].
#[derive(Debug, Clone, Copy, PartialEq)]
#[repr(transparent)]
pub struct F32Lanes<const N: usize>(pub [f32; N]);

macro_rules! lanes_impl {
    ($name:ident, $elem:ty) => {
        impl<const N: usize> $name<N> {
            /// All lanes equal to `v`.
            #[inline(always)]
            #[must_use]
            pub fn splat(v: $elem) -> Self {
                Self([v; N])
            }

            /// Lanes from the first `N` elements of `s` (panics if shorter).
            #[inline(always)]
            #[must_use]
            pub fn load(s: &[$elem]) -> Self {
                let mut out = [0.0; N];
                out.copy_from_slice(&s[..N]);
                Self(out)
            }

            /// Lane `l` = `f(l)`.
            #[inline(always)]
            #[must_use]
            pub fn from_fn(f: impl FnMut(usize) -> $elem) -> Self {
                Self(std::array::from_fn(f))
            }

            /// Writes the lanes to the first `N` elements of `dst`
            /// (panics if shorter).
            #[inline(always)]
            pub fn store(self, dst: &mut [$elem]) {
                dst[..N].copy_from_slice(&self.0);
            }

            /// Elementwise square root.
            #[inline(always)]
            #[must_use]
            pub fn sqrt(self) -> Self {
                let mut out = self.0;
                for v in &mut out {
                    *v = v.sqrt();
                }
                Self(out)
            }

            /// Sequential lane sum (`((l0 + l1) + l2) + …`), deterministic
            /// for a fixed `N`.
            #[inline(always)]
            #[must_use]
            pub fn sum(self) -> $elem {
                let mut acc = 0.0;
                for v in self.0 {
                    acc += v;
                }
                acc
            }
        }

        impl<const N: usize> Add for $name<N> {
            type Output = Self;
            #[inline(always)]
            fn add(self, rhs: Self) -> Self {
                Self(std::array::from_fn(|l| self.0[l] + rhs.0[l]))
            }
        }

        impl<const N: usize> Sub for $name<N> {
            type Output = Self;
            #[inline(always)]
            fn sub(self, rhs: Self) -> Self {
                Self(std::array::from_fn(|l| self.0[l] - rhs.0[l]))
            }
        }

        impl<const N: usize> Mul for $name<N> {
            type Output = Self;
            #[inline(always)]
            fn mul(self, rhs: Self) -> Self {
                Self(std::array::from_fn(|l| self.0[l] * rhs.0[l]))
            }
        }

        impl<const N: usize> Div for $name<N> {
            type Output = Self;
            #[inline(always)]
            fn div(self, rhs: Self) -> Self {
                Self(std::array::from_fn(|l| self.0[l] / rhs.0[l]))
            }
        }

        impl<const N: usize> Neg for $name<N> {
            type Output = Self;
            #[inline(always)]
            fn neg(self) -> Self {
                Self(std::array::from_fn(|l| -self.0[l]))
            }
        }

        impl<const N: usize> AddAssign for $name<N> {
            #[inline(always)]
            fn add_assign(&mut self, rhs: Self) {
                for l in 0..N {
                    self.0[l] += rhs.0[l];
                }
            }
        }
    };
}

lanes_impl!(F64Lanes, f64);
lanes_impl!(F32Lanes, f32);

impl<const N: usize> F32Lanes<N> {
    /// Lane sum widened to f64 before accumulating, so the final
    /// reduction adds no f32 rounding on top of the per-lane error.
    #[inline(always)]
    #[must_use]
    pub fn sum_f64(self) -> f64 {
        let mut acc = 0.0f64;
        for v in self.0 {
            acc += f64::from(v);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_is_cached_and_consistent() {
        let first = level();
        assert_eq!(level(), first);
        // The cached tier never exceeds what the probe reports.
        assert!(first.rank() <= detect().rank() || cfg!(feature = "force-scalar"));
    }

    #[test]
    fn lane_widths_per_tier() {
        assert_eq!(SimdLevel::Scalar.m2p_lanes(), 4);
        assert_eq!(SimdLevel::Avx2.m2p_lanes(), 4);
        assert_eq!(SimdLevel::Avx512.m2p_lanes(), 8);
        assert_eq!(SimdLevel::Scalar.p2p_lanes_f32(), 8);
        assert_eq!(SimdLevel::Avx512.p2p_lanes_f32(), 16);
        assert_eq!(SimdLevel::Avx512.p2p_lanes_f64(), 8);
        for lv in [SimdLevel::Scalar, SimdLevel::Avx2, SimdLevel::Avx512] {
            assert_eq!(SimdLevel::from_rank(lv.rank()), lv);
        }
    }

    #[test]
    fn set_level_clamps_to_detected() {
        let restore = level();
        let applied = set_level(SimdLevel::Avx512);
        assert!(applied.rank() <= detect().rank() || cfg!(feature = "force-scalar"));
        let scalar = set_level(SimdLevel::Scalar);
        assert_eq!(scalar, SimdLevel::Scalar);
        assert_eq!(level(), SimdLevel::Scalar);
        set_level(restore);
        assert_eq!(level(), restore);
    }

    #[test]
    fn dispatch_runs_closure_and_returns() {
        let xs = F64Lanes::<4>::from_fn(|l| l as f64 + 1.0);
        let got = dispatch(|| (xs * xs + xs).sum());
        // 1*1+1 + 2*2+2 + 3*3+3 + 4*4+4 = 2 + 6 + 12 + 20
        assert!((got - 40.0).abs() < 1e-12);
    }

    #[test]
    fn lane_arithmetic_is_elementwise() {
        let a = F64Lanes::<8>::from_fn(|l| l as f64);
        let b = F64Lanes::<8>::splat(2.0);
        let sum = a + b;
        let prod = a * b;
        let quot = a / b;
        let diff = a - b;
        for l in 0..8 {
            let x = l as f64;
            assert!((sum.0[l] - (x + 2.0)).abs() < 1e-15);
            assert!((prod.0[l] - x * 2.0).abs() < 1e-15);
            assert!((quot.0[l] - x / 2.0).abs() < 1e-15);
            assert!((diff.0[l] - (x - 2.0)).abs() < 1e-15);
        }
        assert!(((-a).0[3] + 3.0).abs() < 1e-15);
        assert!((a.sqrt().0[4] - 2.0).abs() < 1e-15);
        let mut acc = F64Lanes::<8>::splat(0.0);
        acc += a;
        acc += a;
        assert!((acc.sum() - 56.0).abs() < 1e-12);
    }

    #[test]
    fn f32_lanes_widen_on_reduction() {
        let v = F32Lanes::<16>::from_fn(|l| l as f32);
        assert!((v.sum_f64() - 120.0).abs() < 1e-9);
        let loaded = F32Lanes::<4>::load(&[1.0, 2.0, 3.0, 4.0, 99.0]);
        assert_eq!(loaded.0, [1.0, 2.0, 3.0, 4.0]);
        assert!((loaded.sum() - 10.0).abs() < 1e-6);
    }
}
