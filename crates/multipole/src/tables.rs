//! Precomputed factorial and Greengard–Rokhlin `A_n^m` coefficient tables.
//!
//! The translation operators (M2M / M2L / L2L) repeatedly need
//! `A_n^m = (−1)ⁿ / √((n−m)!·(n+m)!)` for degrees up to twice the expansion
//! degree (M2L touches `A_{j+n}^{m−k}` with `j + n ≤ 2p`). All tables are
//! computed once, on first use, behind a `OnceLock`.

use std::sync::OnceLock;

/// Maximum usable expansion degree `p`.
///
/// Tables cover degree `2·MAX_DEGREE`, so factorial arguments reach
/// `4·MAX_DEGREE = 160`, safely below the `f64` overflow at `171!`.
pub const MAX_DEGREE: usize = 40;

/// Degree limit of the `A_n^m` table itself (`2·MAX_DEGREE`).
pub const TABLE_DEGREE: usize = 2 * MAX_DEGREE;

/// Index of `(n, m)` (with `0 ≤ m ≤ n`) in a triangular array.
#[inline(always)]
#[must_use]
pub const fn tri_index(n: usize, m: usize) -> usize {
    n * (n + 1) / 2 + m
}

/// Number of `(n, m)` pairs with `n ≤ degree`, `0 ≤ m ≤ n`.
#[inline(always)]
#[must_use]
pub const fn tri_len(degree: usize) -> usize {
    (degree + 1) * (degree + 2) / 2
}

/// Heap bytes of one degree-`p` coefficient span (the triangular array of
/// complex coefficients a node expansion stores) — the unit of plan-cache
/// size accounting.
#[inline]
#[must_use]
pub const fn coeff_bytes(degree: usize) -> usize {
    tri_len(degree) * std::mem::size_of::<crate::complex::Complex>()
}

/// The shared numeric tables.
pub struct Tables {
    /// `fact[k] = k!` for `k ≤ 4·MAX_DEGREE`.
    fact: Vec<f64>,
    /// Triangular table of `A_n^m` for `n ≤ TABLE_DEGREE`, `0 ≤ m ≤ n`
    /// (`A_n^{−m} = A_n^m`).
    a: Vec<f64>,
    /// Triangular table of `√((n−m)!/(n+m)!)` — the `Y_n^m` normalisation.
    norm: Vec<f64>,
}

impl Tables {
    fn build() -> Tables {
        let nfact = 4 * MAX_DEGREE + 1;
        let mut fact = Vec::with_capacity(nfact);
        fact.push(1.0f64);
        for k in 1..nfact {
            let prev = fact[k - 1];
            fact.push(prev * k as f64);
        }
        let mut a = vec![0.0; tri_len(TABLE_DEGREE)];
        let mut norm = vec![0.0; tri_len(TABLE_DEGREE)];
        for n in 0..=TABLE_DEGREE {
            let sign = if n % 2 == 0 { 1.0 } else { -1.0 };
            for m in 0..=n {
                let idx = tri_index(n, m);
                a[idx] = sign / (fact[n - m] * fact[n + m]).sqrt();
                norm[idx] = (fact[n - m] / fact[n + m]).sqrt();
            }
        }
        Tables { fact, a, norm }
    }

    /// The process-wide table instance.
    pub fn get() -> &'static Tables {
        static TABLES: OnceLock<Tables> = OnceLock::new();
        TABLES.get_or_init(Tables::build)
    }

    /// `k!`.
    #[inline(always)]
    #[must_use]
    pub fn factorial(&self, k: usize) -> f64 {
        self.fact[k]
    }

    /// `A_n^m` for any `|m| ≤ n ≤ TABLE_DEGREE`.
    #[inline(always)]
    #[must_use]
    pub fn a(&self, n: usize, m: i64) -> f64 {
        let m = m.unsigned_abs() as usize;
        debug_assert!(m <= n && n <= TABLE_DEGREE);
        self.a[tri_index(n, m)]
    }

    /// `√((n−|m|)!/(n+|m|)!)` — the spherical-harmonic normalisation.
    #[inline(always)]
    #[must_use]
    pub fn norm(&self, n: usize, m: i64) -> f64 {
        let m = m.unsigned_abs() as usize;
        debug_assert!(m <= n && n <= TABLE_DEGREE);
        self.norm[tri_index(n, m)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorials() {
        let t = Tables::get();
        assert_eq!(t.factorial(0), 1.0);
        assert_eq!(t.factorial(5), 120.0);
        assert_eq!(t.factorial(10), 3_628_800.0);
        // largest table entry must still be finite
        assert!(t.factorial(4 * MAX_DEGREE).is_finite());
    }

    #[test]
    fn a_closed_forms() {
        let t = Tables::get();
        assert_eq!(t.a(0, 0), 1.0);
        assert_eq!(t.a(1, 0), -1.0); // (-1)^1/sqrt(1!·1!)
        assert!((t.a(1, 1) - -1.0 / 2.0f64.sqrt()).abs() < 1e-15);
        assert!((t.a(2, 0) - 1.0 / 2.0).abs() < 1e-15); // 1/sqrt(2!·2!) = 1/2
                                                        // symmetry in the sign of m
        assert_eq!(t.a(7, 3), t.a(7, -3));
    }

    #[test]
    fn norm_closed_forms() {
        let t = Tables::get();
        assert_eq!(t.norm(0, 0), 1.0);
        assert_eq!(t.norm(3, 0), 1.0);
        assert!((t.norm(1, 1) - (1.0f64 / 2.0).sqrt()).abs() < 1e-15);
        assert!((t.norm(2, 2) - (1.0f64 / 24.0).sqrt()).abs() < 1e-15);
        assert_eq!(t.norm(5, 2), t.norm(5, -2));
    }

    #[test]
    fn extreme_entries_are_normal_floats() {
        let t = Tables::get();
        let a = t.a(TABLE_DEGREE, 0);
        assert!(a.is_finite() && a != 0.0);
        let a = t.a(TABLE_DEGREE, TABLE_DEGREE as i64);
        assert!(a.is_finite() && a != 0.0);
        // products appearing in M2L stay representable:
        // A_p^0 · A_p^0 / A_{2p}^0
        let v = t.a(MAX_DEGREE, 0) * t.a(MAX_DEGREE, 0) / t.a(TABLE_DEGREE, 0);
        assert!(v.is_finite());
    }

    #[test]
    fn tri_indexing() {
        assert_eq!(tri_index(0, 0), 0);
        assert_eq!(tri_index(1, 0), 1);
        assert_eq!(tri_index(1, 1), 2);
        assert_eq!(tri_index(2, 0), 3);
        assert_eq!(tri_len(0), 1);
        assert_eq!(tri_len(2), 6);
        // indices are dense and in-range
        let mut next = 0;
        for n in 0..=6 {
            for m in 0..=n {
                assert_eq!(tri_index(n, m), next);
                next += 1;
            }
        }
        assert_eq!(next, tri_len(6));
    }
}
