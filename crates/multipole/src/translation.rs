//! Expansion translation operators: M2M, M2L, L2L.
//!
//! All three follow the classical Greengard–Rokhlin lemmas for the Laplace
//! kernel in three dimensions. In each case the geometry vector handed to
//! the kernel is the *source* expansion center relative to the *target*
//! center, converted to spherical coordinates `(ρ, α, β)`.
//!
//! * **M2M** is exact when the target degree is at least the source degree
//!   (a degree-`p` multipole of a cluster is a degree-`p` multipole about
//!   any other center plus terms of degree `> p`).
//! * **M2L** converges when the observation sphere and the source sphere
//!   are well separated; its truncation error obeys the same geometric
//!   decay as Theorem 1.
//! * **L2L** is exact (a polynomial recentred is the same polynomial).

use mbt_geometry::{Spherical, Vec3};

use crate::complex::Complex;
use crate::expansion::{powers, Coeffs, ExpansionRef, LocalExpansion, MultipoleExpansion};
use crate::harmonics::Harmonics;
use crate::tables::{tri_index, tri_len, Tables};

impl ExpansionRef<'_> {
    /// Translates this expansion to a new center and **accumulates** the
    /// result into `out` (M2M into arena storage).
    ///
    /// `out` must hold exactly the triangular array for `target_degree`.
    /// Accumulating directly (rather than building a temporary expansion
    /// and adding it) performs the same floating-point additions in the
    /// same order as `parent.accumulate(&child.translated(..))` did, so
    /// upward passes over either storage layout agree bit for bit.
    #[allow(clippy::needless_range_loop)] // degree loops index shared tables
    pub fn m2m_accumulate_into(&self, new_center: Vec3, target_degree: usize, out: &mut [Complex]) {
        assert_eq!(
            out.len(),
            tri_len(target_degree),
            "coefficient span length does not match degree {target_degree}"
        );
        let t = Tables::get();
        let d = self.center - new_center;
        let s = Spherical::from_cartesian(d);
        let h = Harmonics::new(target_degree, &s);
        let rp = powers(s.rho, target_degree);
        let p_src = self.degree;

        for j in 0..=target_degree {
            for k in 0..=j as i64 {
                let mut acc = Complex::ZERO;
                // n = degree taken from the shift; j-n from the source
                let n_lo = j.saturating_sub(p_src);
                for n in n_lo..=j {
                    let jn = j - n;
                    for m in -(n as i64)..=(n as i64) {
                        let km = k - m;
                        if km.unsigned_abs() as usize > jn {
                            continue;
                        }
                        let o = self.coeff(jn, km);
                        if o == Complex::ZERO {
                            continue;
                        }
                        let phase = Complex::i_pow(k.abs() - m.abs() - km.abs());
                        let coeff = t.a(n, m) * t.a(jn, km) * rp[n] / t.a(j, k);
                        acc += o * phase * h.y(n, -m) * coeff;
                    }
                }
                out[tri_index(j, k as usize)] += acc;
            }
        }
    }

    /// Converts this multipole expansion into a local expansion about
    /// `local_center` (M2L).
    ///
    /// Convergence requires the target sphere to be well separated from the
    /// source sphere; the caller (FMM interaction lists) guarantees that.
    #[must_use]
    pub fn to_local(&self, local_center: Vec3, target_degree: usize) -> LocalExpansion {
        let t = Tables::get();
        let d = self.center - local_center;
        let s = Spherical::from_cartesian(d);
        assert!(s.rho > 0.0, "M2L with coincident centers");
        let p_src = self.degree;
        let h = Harmonics::new(target_degree + p_src, &s);
        let inv = 1.0 / s.rho;
        let invp = powers(inv, target_degree + p_src + 1);

        let mut out = Coeffs::zero(target_degree);
        for j in 0..=target_degree {
            for k in 0..=j as i64 {
                let mut acc = Complex::ZERO;
                for n in 0..=p_src {
                    let neg = if n % 2 == 0 { 1.0 } else { -1.0 };
                    for m in -(n as i64)..=(n as i64) {
                        let o = self.coeff(n, m);
                        if o == Complex::ZERO {
                            continue;
                        }
                        let phase = Complex::i_pow((k - m).abs() - k.abs() - m.abs());
                        let coeff =
                            t.a(n, m) * t.a(j, k) * invp[j + n + 1] / (neg * t.a(j + n, m - k));
                        acc += o * phase * h.y(j + n, m - k) * coeff;
                    }
                }
                out.add(j, k as usize, acc);
            }
        }
        LocalExpansion {
            center: local_center,
            coeffs: out,
        }
    }
}

impl MultipoleExpansion {
    /// Translates this expansion to a new center (M2M).
    ///
    /// `target_degree` may exceed the source degree (the missing source
    /// coefficients read as zero); for `target_degree >= self.degree()` the
    /// translation introduces no additional truncation error.
    #[must_use]
    pub fn translated(&self, new_center: Vec3, target_degree: usize) -> MultipoleExpansion {
        let mut out = Coeffs::zero(target_degree);
        self.as_ref()
            .m2m_accumulate_into(new_center, target_degree, &mut out.c);
        MultipoleExpansion {
            center: new_center,
            coeffs: out,
        }
    }

    /// Converts this multipole expansion into a local expansion about
    /// `local_center` (M2L); see [`ExpansionRef::to_local`].
    #[must_use]
    pub fn to_local(&self, local_center: Vec3, target_degree: usize) -> LocalExpansion {
        self.as_ref().to_local(local_center, target_degree)
    }
}

impl LocalExpansion {
    /// Recenters this local expansion (L2L). Exact for any shift.
    #[must_use]
    pub fn translated(&self, new_center: Vec3, target_degree: usize) -> LocalExpansion {
        let t = Tables::get();
        let d = self.center - new_center;
        let s = Spherical::from_cartesian(d);
        let p_src = self.coeffs.degree;
        let h = Harmonics::new(p_src, &s);
        let rp = powers(s.rho, p_src);
        let src = &self.coeffs;

        let mut out = Coeffs::zero(target_degree);
        for j in 0..=target_degree.min(p_src) {
            for k in 0..=j as i64 {
                let mut acc = Complex::ZERO;
                for n in j..=p_src {
                    let nj = n - j;
                    let neg = if (n + j) % 2 == 0 { 1.0 } else { -1.0 };
                    for m in -(n as i64)..=(n as i64) {
                        let mk = m - k;
                        if mk.unsigned_abs() as usize > nj {
                            continue;
                        }
                        let o = src.get(n, m);
                        if o == Complex::ZERO {
                            continue;
                        }
                        let phase = Complex::i_pow(m.abs() - mk.abs() - k.abs());
                        let coeff = t.a(nj, mk) * t.a(j, k) * rp[nj] / (neg * t.a(n, m));
                        acc += o * phase * h.y(nj, mk) * coeff;
                    }
                }
                out.add(j, k as usize, acc);
            }
        }
        LocalExpansion {
            center: new_center,
            coeffs: out,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbt_geometry::Particle;

    /// A deterministic pseudo-random cluster inside a ball.
    fn cluster(center: Vec3, radius: f64, n: usize, seed: u64) -> Vec<Particle> {
        // simple LCG to avoid test-only dependencies here
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| {
                let v = loop {
                    let v = Vec3::new(next() * 2.0 - 1.0, next() * 2.0 - 1.0, next() * 2.0 - 1.0);
                    if v.norm_sq() <= 1.0 {
                        break v;
                    }
                };
                let q = if next() > 0.5 { 1.0 } else { -1.0 } * (0.5 + next());
                Particle::new(center + v * radius, q)
            })
            .collect()
    }

    fn direct_potential(particles: &[Particle], point: Vec3) -> f64 {
        particles
            .iter()
            .map(|p| p.charge / p.position.distance(point))
            .sum()
    }

    #[test]
    fn p2m_matches_direct_sum() {
        let center = Vec3::new(0.5, -0.25, 1.0);
        let ps = cluster(center, 0.5, 60, 7);
        let point = center + Vec3::new(2.0, 1.0, -1.5);
        let exact = direct_potential(&ps, point);
        let mut prev_err = f64::INFINITY;
        for p in [2usize, 4, 8, 14, 20] {
            let e = MultipoleExpansion::from_particles(center, p, &ps);
            let err = (e.potential_at(point) - exact).abs();
            assert!(err < prev_err * 1.5, "error not decreasing at p={p}: {err}");
            prev_err = err;
        }
        assert!(prev_err < 1e-10, "p=20 error too large: {prev_err}");
    }

    #[test]
    fn m2m_exact_for_equal_degree() {
        let c1 = Vec3::new(0.2, 0.1, -0.3);
        let ps = cluster(c1, 0.4, 40, 3);
        let p = 12;
        let e1 = MultipoleExpansion::from_particles(c1, p, &ps);
        let c2 = Vec3::new(0.0, 0.0, 0.0);
        let shifted = e1.translated(c2, p);
        // direct expansion about c2 from the same sources, truncated to p,
        // differs from the translated one only beyond degree p... but the
        // translated expansion must REPRODUCE e1's field to within its own
        // truncation error. Compare potentials far away where both apply.
        let point = Vec3::new(3.0, -2.0, 2.5);
        let a = e1.potential_at(point);
        let b = shifted.potential_at(point);
        let exact = direct_potential(&ps, point);
        // The translated expansion must obey the Theorem-1 bound about its
        // own (enlarged) enclosing sphere: radius = cluster radius + shift.
        let abs_charge: f64 = ps.iter().map(|q| q.charge.abs()).sum();
        let enclosing = 0.4 + c1.distance(c2);
        let bound = crate::bounds::theorem1_bound(abs_charge, enclosing, point.distance(c2), p);
        assert!(
            (b - exact).abs() <= bound,
            "M2M error {} exceeds Theorem-1 bound {bound}",
            (b - exact).abs()
        );
        assert!(
            (a - b).abs() < 1e-9,
            "translated expansion inconsistent: {a} vs {b}"
        );
    }

    #[test]
    fn m2m_zero_shift_is_identity() {
        let c = Vec3::new(1.0, 2.0, 3.0);
        let ps = cluster(c, 0.3, 10, 11);
        let e = MultipoleExpansion::from_particles(c, 6, &ps);
        let same = e.translated(c, 6);
        for n in 0..=6usize {
            for m in 0..=n as i64 {
                assert!(
                    (e.coeff(n, m) - same.coeff(n, m)).norm() < 1e-12,
                    "identity shift changed ({n},{m})"
                );
            }
        }
    }

    #[test]
    fn m2m_matches_direct_p2m_about_new_center() {
        // For degree high enough to capture the cluster, translation and
        // direct expansion about the new center agree coefficient-wise in
        // the low degrees.
        let c1 = Vec3::new(0.25, 0.25, 0.25);
        let c2 = Vec3::ZERO;
        let ps = cluster(c1, 0.2, 25, 19);
        let p = 16;
        let translated = MultipoleExpansion::from_particles(c1, p, &ps).translated(c2, p);
        let direct = MultipoleExpansion::from_particles(c2, p, &ps);
        for n in 0..=6usize {
            for m in 0..=n as i64 {
                let a = translated.coeff(n, m);
                let b = direct.coeff(n, m);
                assert!(
                    (a - b).norm() < 1e-8 * (1.0 + b.norm()),
                    "coefficient ({n},{m}) mismatch: {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn m2l_matches_direct_sum() {
        let src_c = Vec3::new(4.0, 0.0, 0.0);
        let ps = cluster(src_c, 0.5, 50, 23);
        let loc_c = Vec3::ZERO;
        let p = 16;
        let mult = MultipoleExpansion::from_particles(src_c, p, &ps);
        let local = mult.to_local(loc_c, p);
        for point in [
            Vec3::new(0.3, 0.2, -0.1),
            Vec3::new(-0.4, 0.1, 0.3),
            Vec3::ZERO,
        ] {
            let exact = direct_potential(&ps, point);
            let approx = local.potential_at(point);
            assert!(
                (approx - exact).abs() < 1e-6 * exact.abs().max(1.0),
                "M2L at {point:?}: {approx} vs {exact}"
            );
        }
    }

    #[test]
    fn p2l_matches_direct_sum() {
        let ps = cluster(Vec3::new(5.0, 1.0, -2.0), 0.5, 30, 29);
        let local = LocalExpansion::from_distant_particles(Vec3::ZERO, 18, &ps);
        let point = Vec3::new(0.2, -0.3, 0.25);
        let exact = direct_potential(&ps, point);
        let approx = local.potential_at(point);
        assert!(
            (approx - exact).abs() < 1e-8 * exact.abs().max(1.0),
            "{approx} vs {exact}"
        );
    }

    #[test]
    fn l2l_is_exact() {
        let ps = cluster(Vec3::new(6.0, -1.0, 3.0), 0.4, 30, 31);
        let p = 10;
        let local = LocalExpansion::from_distant_particles(Vec3::ZERO, p, &ps);
        let new_c = Vec3::new(0.3, -0.2, 0.1);
        let shifted = local.translated(new_c, p);
        for point in [
            Vec3::new(0.35, -0.15, 0.05),
            new_c,
            Vec3::new(0.2, -0.3, 0.2),
        ] {
            let a = local.potential_at(point);
            let b = shifted.potential_at(point);
            assert!(
                (a - b).abs() < 1e-10 * a.abs().max(1.0),
                "L2L at {point:?}: {a} vs {b}"
            );
        }
    }

    #[test]
    fn full_fmm_chain_m2m_m2l_l2l() {
        // P2M -> M2M -> M2L -> L2L -> L2P against the direct sum: the
        // operator pipeline used by the FMM.
        let src_child = Vec3::new(4.1, 0.1, -0.1);
        let src_parent = Vec3::new(4.0, 0.0, 0.0);
        let tgt_parent = Vec3::ZERO;
        let tgt_child = Vec3::new(0.1, -0.1, 0.1);
        let ps = cluster(src_child, 0.3, 40, 37);
        let p = 14;
        let m = MultipoleExpansion::from_particles(src_child, p, &ps)
            .translated(src_parent, p)
            .to_local(tgt_parent, p)
            .translated(tgt_child, p);
        let point = tgt_child + Vec3::new(0.15, 0.1, -0.05);
        let exact = direct_potential(&ps, point);
        let approx = m.potential_at(point);
        assert!(
            (approx - exact).abs() < 1e-5 * exact.abs().max(1.0),
            "chain: {approx} vs {exact}"
        );
    }
}
