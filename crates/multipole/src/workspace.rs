//! Reusable evaluation scratch so the hot kernels (P2M accumulation, M2P
//! potential/field evaluation) run without touching the allocator.
//!
//! Every `Legendre::new` call builds three triangular arrays, every power
//! table is a fresh `Vec`, and the per-degree partial sums of the M2P
//! kernels were short-lived `Vec`s — four to six allocations per evaluated
//! interaction. A [`Workspace`] owns all of those buffers; the `*_with`
//! evaluation APIs (see [`crate::expansion::ExpansionRef`]) thread one
//! through, and callers keep one workspace per worker task (the treecode
//! keeps one per evaluation chunk — the paper's aggregation width `w`),
//! so steady-state evaluation performs **zero** heap allocations per
//! interaction.
//!
//! Buffers grow monotonically to the largest degree seen and never
//! shrink; size the workspace up front with [`Workspace::with_capacity`]
//! to make even the first interaction allocation-free.

use crate::legendre::Legendre;
use crate::tables::tri_len;

/// Scratch buffers for expansion construction and evaluation.
///
/// One workspace serves any interleaving of P2M / M2P / L2P calls at any
/// degrees; each kernel fully overwrites the prefix it reads.
#[derive(Debug, Clone)]
pub struct Workspace {
    /// Associated Legendre tables, recomputed in place per evaluation.
    pub(crate) leg: Legendre,
    /// Radial power table `rho^0..rho^d` (P2L needs `d+2` entries).
    pub(crate) pow: Vec<f64>,
    /// Per-degree partial sums of the potential series.
    pub(crate) acc_pot: Vec<f64>,
    /// Per-degree partial sums of the `∂/∂θ` series.
    pub(crate) acc_dth: Vec<f64>,
    /// Per-degree partial sums of the `∂/∂φ` series.
    pub(crate) acc_dph: Vec<f64>,
}

impl Workspace {
    /// An empty workspace; buffers grow on first use.
    #[must_use]
    pub fn new() -> Workspace {
        Workspace::with_capacity(0)
    }

    /// A workspace pre-sized for evaluations up to `degree`, so no call at
    /// or below that degree ever allocates.
    #[must_use]
    pub fn with_capacity(degree: usize) -> Workspace {
        Workspace {
            leg: Legendre::with_capacity(degree),
            // lint: allow(alloc, workspace construction — the one-time cost the kernels amortise)
            pow: vec![0.0; degree + 2],
            acc_pot: vec![0.0; degree + 1], // lint: allow(alloc, workspace construction)
            acc_dth: vec![0.0; degree + 1], // lint: allow(alloc, workspace construction)
            acc_dph: vec![0.0; degree + 1], // lint: allow(alloc, workspace construction)
        }
    }

    /// Grows the degree-indexed buffers to cover `degree` (the `Legendre`
    /// table grows inside `recompute`). No-op once large enough.
    #[inline]
    pub(crate) fn ensure_degree(&mut self, degree: usize) {
        if self.pow.len() < degree + 2 {
            self.pow.resize(degree + 2, 0.0);
            self.acc_pot.resize(degree + 1, 0.0);
            self.acc_dth.resize(degree + 1, 0.0);
            self.acc_dph.resize(degree + 1, 0.0);
        }
    }
}

impl Default for Workspace {
    fn default() -> Workspace {
        Workspace::new()
    }
}

/// Writes `rho^0, rho^1, …` into every slot of `out`.
///
/// Slice-filling replacement for the allocating `powers()` helper; the
/// caller picks the length (`degree + 1` for multipole evaluation,
/// `degree + 2` for P2L, which needs `rho^{-(degree+1)}`).
#[inline]
pub(crate) fn fill_powers(out: &mut [f64], rho: f64) {
    let mut acc = 1.0;
    for slot in out.iter_mut() {
        *slot = acc;
        acc *= rho;
    }
}

/// Sanity anchor for buffer sizing: a degree-`d` triangular table holds
/// `(d+1)(d+2)/2` entries.
const _: () = assert!(tri_len(4) == 15);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_powers_matches_definition() {
        let mut buf = [0.0; 6];
        fill_powers(&mut buf, 1.5);
        for (i, &v) in buf.iter().enumerate() {
            assert_eq!(v, 1.5f64.powi(i as i32));
        }
        fill_powers(&mut buf[..1], 3.0);
        assert_eq!(buf[0], 1.0);
    }

    #[test]
    fn ensure_degree_grows_monotonically() {
        let mut ws = Workspace::new();
        ws.ensure_degree(8);
        assert!(ws.pow.len() >= 10 && ws.acc_pot.len() >= 9);
        let cap = ws.pow.capacity();
        ws.ensure_degree(4); // smaller: no shrink, no realloc
        assert_eq!(ws.pow.capacity(), cap);
        assert!(ws.pow.len() >= 10);
    }

    #[test]
    fn with_capacity_prepares_all_buffers() {
        let ws = Workspace::with_capacity(12);
        assert!(ws.pow.len() >= 14);
        assert!(ws.acc_pot.len() >= 13);
        assert!(ws.acc_dth.len() >= 13);
        assert!(ws.acc_dph.len() >= 13);
        assert_eq!(ws.leg.degree(), 12);
    }
}
