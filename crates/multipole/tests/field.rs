//! Gradient (field) evaluation tests: the analytic spherical gradient of
//! multipole and local expansions must match both finite differences of the
//! potential and the direct pairwise force sum.

use mbt_geometry::{Particle, Vec3};
use mbt_multipole::{LocalExpansion, MultipoleExpansion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_cluster(center: Vec3, radius: f64, n: usize, seed: u64) -> Vec<Particle> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let v = loop {
                let v = Vec3::new(
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                );
                if v.norm_sq() <= 1.0 {
                    break v;
                }
            };
            Particle::new(center + v * radius, rng.gen_range(-2.0..2.0))
        })
        .collect()
}

fn direct_field(ps: &[Particle], x: Vec3) -> (f64, Vec3) {
    let mut phi = 0.0;
    let mut grad = Vec3::ZERO;
    for p in ps {
        let d = x - p.position;
        let r = d.norm();
        phi += p.charge / r;
        grad += d * (-p.charge / (r * r * r));
    }
    (phi, grad)
}

fn fd_gradient(f: impl Fn(Vec3) -> f64, x: Vec3, h: f64) -> Vec3 {
    Vec3::new(
        (f(x + Vec3::X * h) - f(x - Vec3::X * h)) / (2.0 * h),
        (f(x + Vec3::Y * h) - f(x - Vec3::Y * h)) / (2.0 * h),
        (f(x + Vec3::Z * h) - f(x - Vec3::Z * h)) / (2.0 * h),
    )
}

#[test]
fn multipole_gradient_matches_finite_differences() {
    let center = Vec3::new(0.3, -0.2, 0.4);
    let ps = random_cluster(center, 0.5, 40, 5);
    let e = MultipoleExpansion::from_particles(center, 10, &ps);
    for point in [
        center + Vec3::new(2.0, 0.5, -1.0),
        center + Vec3::new(-1.5, 2.5, 0.7),
        center + Vec3::new(0.0, 0.0, 3.0), // on the polar axis
        center + Vec3::new(0.0, 0.0, -3.0),
        center + Vec3::new(3.0, 0.0, 0.0), // equatorial
    ] {
        let (phi, grad) = e.field_at(point);
        assert!((phi - e.potential_at(point)).abs() < 1e-12 * phi.abs().max(1.0));
        // FD step 1e-4 balances truncation against the acos-near-pole
        // rounding that a smaller step would amplify by 1/h.
        let fd = fd_gradient(|x| e.potential_at(x), point, 1e-4);
        assert!(
            grad.distance(fd) < 1e-6 * (1.0 + grad.norm()),
            "gradient mismatch at {point:?}: {grad:?} vs fd {fd:?}"
        );
    }
}

#[test]
fn multipole_gradient_converges_to_direct_force() {
    let center = Vec3::ZERO;
    let ps = random_cluster(center, 0.4, 60, 9);
    let point = Vec3::new(1.8, -1.1, 0.9);
    let (exact_phi, exact_grad) = direct_field(&ps, point);
    let mut prev = f64::INFINITY;
    for p in [2usize, 5, 9, 14, 20] {
        let e = MultipoleExpansion::from_particles(center, p, &ps);
        let (phi, grad) = e.field_at(point);
        let err = grad.distance(exact_grad) + (phi - exact_phi).abs();
        assert!(err < prev * 1.5, "field error not decreasing at p={p}");
        prev = err;
    }
    assert!(prev < 1e-9, "p=20 field error too large: {prev}");
}

#[test]
fn local_gradient_matches_finite_differences() {
    let src = random_cluster(Vec3::new(5.0, 0.5, -1.0), 0.5, 30, 13);
    let l = LocalExpansion::from_distant_particles(Vec3::ZERO, 12, &src);
    for point in [
        Vec3::new(0.3, 0.1, -0.2),
        Vec3::new(0.0, 0.0, 0.4), // polar axis
        Vec3::new(-0.25, 0.3, 0.0),
    ] {
        let (phi, grad) = l.field_at(point);
        assert!((phi - l.potential_at(point)).abs() < 1e-12 * phi.abs().max(1.0));
        let fd = fd_gradient(|x| l.potential_at(x), point, 1e-6);
        assert!(
            grad.distance(fd) < 1e-5 * (1.0 + grad.norm()),
            "local gradient mismatch at {point:?}: {grad:?} vs fd {fd:?}"
        );
    }
}

#[test]
fn local_gradient_matches_direct_force() {
    let src = random_cluster(Vec3::new(4.0, -3.0, 2.0), 0.4, 50, 17);
    let l = LocalExpansion::from_distant_particles(Vec3::ZERO, 18, &src);
    let point = Vec3::new(0.2, 0.25, -0.15);
    let (exact_phi, exact_grad) = direct_field(&src, point);
    let (phi, grad) = l.field_at(point);
    assert!((phi - exact_phi).abs() < 1e-8 * exact_phi.abs().max(1.0));
    assert!(grad.distance(exact_grad) < 1e-7 * (1.0 + exact_grad.norm()));
}

#[test]
fn local_field_at_center_is_finite() {
    let src = random_cluster(Vec3::new(3.0, 0.0, 0.0), 0.3, 10, 21);
    let l = LocalExpansion::from_distant_particles(Vec3::ZERO, 8, &src);
    let (phi, grad) = l.field_at(Vec3::ZERO);
    assert!(phi.is_finite());
    assert!(grad.is_finite());
    let (exact_phi, exact_grad) = direct_field(&src, Vec3::ZERO);
    assert!((phi - exact_phi).abs() < 1e-6 * exact_phi.abs().max(1.0));
    assert!(grad.distance(exact_grad) < 1e-5 * (1.0 + exact_grad.norm()));
}

#[test]
fn single_charge_field_is_coulomb() {
    // one unit charge at the center: Φ = 1/r, ∇Φ = -x/r³ exactly at any p
    let ps = [Particle::new(Vec3::ZERO, 1.0)];
    let e = MultipoleExpansion::from_particles(Vec3::ZERO, 6, &ps);
    for point in [Vec3::new(1.0, 2.0, -0.5), Vec3::new(0.0, 0.0, 2.0)] {
        let (phi, grad) = e.field_at(point);
        let r = point.norm();
        assert!((phi - 1.0 / r).abs() < 1e-14);
        let expect = point * (-1.0 / (r * r * r));
        assert!(grad.distance(expect) < 1e-14);
    }
}
