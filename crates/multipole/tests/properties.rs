//! Property-based tests of the multipole machinery.
//!
//! The central invariant is Theorem 1 of the paper: for *any* cluster and
//! any admissible observation point, the truncated-expansion error must not
//! exceed the analytic bound. The translation operators must preserve that.

use mbt_geometry::{Particle, Vec3};
use mbt_multipole::{theorem1_bound, LocalExpansion, MultipoleExpansion};
use proptest::prelude::*;

fn arb_vec3(range: f64) -> impl Strategy<Value = Vec3> {
    (-range..range, -range..range, -range..range).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn arb_cluster(radius: f64, max_n: usize) -> impl Strategy<Value = Vec<Particle>> {
    prop::collection::vec(
        (arb_vec3(radius), -2.0f64..2.0).prop_map(|(p, q)| Particle::new(p, q)),
        1..max_n,
    )
}

fn direct(ps: &[Particle], x: Vec3) -> f64 {
    ps.iter().map(|p| p.charge / p.position.distance(x)).sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 1 holds: the observed truncation error never exceeds the
    /// bound, for random clusters, degrees, and well-separated points.
    #[test]
    fn theorem1_is_a_true_bound(
        ps in arb_cluster(0.5, 24),
        dir in arb_vec3(1.0).prop_filter("nonzero", |v| v.norm() > 1e-3),
        dist in 1.2f64..6.0,
        p in 0usize..12,
    ) {
        // enclose the cluster: actual max radius
        let a = ps.iter().map(|q| q.position.norm()).fold(0.0, f64::max);
        let point = dir.normalized() * (a.max(0.05) * dist);
        let r = point.norm();
        prop_assume!(r > a * 1.1);
        let e = MultipoleExpansion::from_particles(Vec3::ZERO, p, &ps);
        let err = (e.potential_at(point) - direct(&ps, point)).abs();
        let abs_charge: f64 = ps.iter().map(|q| q.charge.abs()).sum();
        let bound = theorem1_bound(abs_charge, a, r, p);
        prop_assert!(
            err <= bound * (1.0 + 1e-9) + 1e-12,
            "error {err} exceeds bound {bound} (a={a}, r={r}, p={p})"
        );
    }

    /// M2M then evaluation equals evaluation of the original expansion, up
    /// to roundoff, when the target degree matches the source degree and
    /// the point is far from both centers.
    #[test]
    fn m2m_preserves_far_field(
        ps in arb_cluster(0.3, 16),
        shift in arb_vec3(0.5),
    ) {
        let p = 10;
        let e = MultipoleExpansion::from_particles(Vec3::ZERO, p, &ps);
        let t = e.translated(shift, p);
        let point = Vec3::new(7.0, 5.0, 6.0);
        let a = e.potential_at(point);
        let b = t.potential_at(point);
        prop_assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()), "{a} vs {b}");
    }

    /// M2M composition: shifting twice equals shifting once to the final
    /// center (exactness of the operator on its own output degree).
    #[test]
    fn m2m_composes(
        ps in arb_cluster(0.3, 12),
        s1 in arb_vec3(0.4),
        s2 in arb_vec3(0.4),
    ) {
        let p = 8;
        let e = MultipoleExpansion::from_particles(Vec3::ZERO, p, &ps);
        let via = e.translated(s1, p).translated(s1 + s2, p);
        let once = e.translated(s1 + s2, p);
        let point = Vec3::new(9.0, -8.0, 7.5);
        let a = via.potential_at(point);
        let b = once.potential_at(point);
        prop_assert!((a - b).abs() < 1e-7 * (1.0 + b.abs()), "{a} vs {b}");
    }

    /// L2L is exact: the recentred local expansion reproduces the original
    /// everywhere in the shared domain of validity.
    #[test]
    fn l2l_exactness(
        ps in arb_cluster(0.3, 12),
        shift in arb_vec3(0.2),
        probe in arb_vec3(0.15),
    ) {
        // place sources far away
        let far: Vec<Particle> = ps
            .iter()
            .map(|q| Particle::new(q.position + Vec3::new(6.0, 6.0, 6.0), q.charge))
            .collect();
        let l = LocalExpansion::from_distant_particles(Vec3::ZERO, 9, &far);
        let moved = l.translated(shift, 9);
        let a = l.potential_at(probe);
        let b = moved.potential_at(probe);
        prop_assert!((a - b).abs() < 1e-9 * (1.0 + a.abs()), "{a} vs {b}");
    }

    /// Linearity: expansion of a union is the sum of expansions.
    #[test]
    fn p2m_is_linear(
        ps1 in arb_cluster(0.5, 10),
        ps2 in arb_cluster(0.5, 10),
    ) {
        let p = 7;
        let mut joint = ps1.clone();
        joint.extend_from_slice(&ps2);
        let e_joint = MultipoleExpansion::from_particles(Vec3::ZERO, p, &joint);
        let mut e_sum = MultipoleExpansion::from_particles(Vec3::ZERO, p, &ps1);
        e_sum.accumulate(&MultipoleExpansion::from_particles(Vec3::ZERO, p, &ps2));
        let point = Vec3::new(4.0, 4.0, 4.0);
        let a = e_joint.potential_at(point);
        let b = e_sum.potential_at(point);
        prop_assert!((a - b).abs() < 1e-10 * (1.0 + a.abs()));
    }

    /// Charge scaling: scaling every charge scales the potential.
    #[test]
    fn p2m_scales_with_charge(
        ps in arb_cluster(0.5, 12),
        scale in 0.1f64..10.0,
    ) {
        let p = 6;
        let scaled: Vec<Particle> =
            ps.iter().map(|q| Particle::new(q.position, q.charge * scale)).collect();
        let a = MultipoleExpansion::from_particles(Vec3::ZERO, p, &ps);
        let b = MultipoleExpansion::from_particles(Vec3::ZERO, p, &scaled);
        let point = Vec3::new(3.0, -3.0, 3.0);
        let pa = a.potential_at(point);
        let pb = b.potential_at(point);
        prop_assert!((pb - scale * pa).abs() < 1e-9 * (1.0 + pb.abs()));
    }

    /// The monopole coefficient is exactly the net charge.
    #[test]
    fn monopole_is_net_charge(ps in arb_cluster(0.5, 20)) {
        let e = MultipoleExpansion::from_particles(Vec3::ZERO, 4, &ps);
        let net: f64 = ps.iter().map(|p| p.charge).sum();
        let m00 = e.coeff(0, 0);
        prop_assert!((m00.re - net).abs() < 1e-10 * (1.0 + net.abs()));
        prop_assert!(m00.im.abs() < 1e-12);
    }
}
