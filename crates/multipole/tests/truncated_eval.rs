//! Tests of prefix (per-interaction truncated) evaluation: reading only
//! the degree-`q` prefix of a degree-`p ≥ q` expansion must agree exactly
//! with an expansion built at degree `q`.

use mbt_geometry::{Particle, Vec3};
use mbt_multipole::MultipoleExpansion;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn cluster(n: usize, seed: u64) -> Vec<Particle> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            Particle::new(
                Vec3::new(
                    rng.gen_range(-0.4..0.4),
                    rng.gen_range(-0.4..0.4),
                    rng.gen_range(-0.4..0.4),
                ),
                rng.gen_range(-2.0..2.0),
            )
        })
        .collect()
}

#[test]
fn prefix_potential_equals_lower_degree_expansion() {
    let ps = cluster(50, 3);
    let full = MultipoleExpansion::from_particles(Vec3::ZERO, 16, &ps);
    let point = Vec3::new(2.0, -1.0, 1.5);
    for q in [0usize, 1, 4, 9, 16] {
        let low = MultipoleExpansion::from_particles(Vec3::ZERO, q, &ps);
        let a = full.potential_at_degree(point, q);
        let b = low.potential_at(point);
        assert!(
            (a - b).abs() < 1e-12 * (1.0 + b.abs()),
            "prefix q={q}: {a} vs {b}"
        );
    }
}

#[test]
fn prefix_field_equals_lower_degree_expansion() {
    let ps = cluster(40, 7);
    let full = MultipoleExpansion::from_particles(Vec3::ZERO, 12, &ps);
    let point = Vec3::new(-1.5, 2.0, 0.75);
    for q in [1usize, 3, 7, 12] {
        let low = MultipoleExpansion::from_particles(Vec3::ZERO, q, &ps);
        let (pa, ga) = full.field_at_degree(point, q);
        let (pb, gb) = low.field_at(point);
        assert!((pa - pb).abs() < 1e-12 * (1.0 + pb.abs()));
        assert!(
            ga.distance(gb) < 1e-12 * (1.0 + gb.norm()),
            "q={q}: {ga:?} vs {gb:?}"
        );
    }
}

#[test]
fn prefix_degree_clamps_to_stored_degree() {
    let ps = cluster(20, 11);
    let e = MultipoleExpansion::from_particles(Vec3::ZERO, 6, &ps);
    let point = Vec3::new(3.0, 0.5, -0.25);
    // asking for more than stored returns the full evaluation
    assert_eq!(e.potential_at_degree(point, 99), e.potential_at(point));
    let (p_hi, g_hi) = e.field_at_degree(point, 99);
    let (p_full, g_full) = e.field_at(point);
    assert_eq!(p_hi, p_full);
    assert_eq!(g_hi, g_full);
}

#[test]
fn prefix_errors_decrease_monotonically_on_average() {
    // prefix evaluation error against the exact sum shrinks as the prefix
    // grows (allowing small non-monotonic wiggles at low degrees)
    let ps = cluster(80, 13);
    let e = MultipoleExpansion::from_particles(Vec3::ZERO, 20, &ps);
    let point = Vec3::new(1.4, 1.1, -0.9);
    let exact: f64 = ps
        .iter()
        .map(|p| p.charge / p.position.distance(point))
        .sum();
    let err = |q: usize| (e.potential_at_degree(point, q) - exact).abs();
    assert!(err(20) < err(8) && err(8) < err(2) * 2.0);
    assert!(err(20) < 1e-9);
}
