//! Zero-dependency serialisation: a minimal JSON writer, a Prometheus
//! text-format writer, and validity checkers.
//!
//! The writers exist so `EngineStats` can be exported without pulling a
//! serialisation crate into the workspace; the checkers
//! ([`json_is_valid`], [`prometheus_is_valid`]) let bench smoke tests
//! assert that whatever the writers produced actually parses, keeping
//! the hand-rolled encoders honest.

use std::fmt::Write as _;

// ---------------------------------------------------------------------------
// JSON writer
// ---------------------------------------------------------------------------

/// An append-only JSON writer. Keys and values are emitted through typed
/// methods so comma placement is handled internally; non-finite floats
/// are written as `null` (JSON has no Inf/NaN).
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    /// One entry per open container: `true` while it has no elements yet.
    stack: Vec<bool>,
}

impl JsonWriter {
    #[must_use]
    pub fn new() -> Self {
        JsonWriter::default()
    }

    fn pre_value(&mut self) {
        if let Some(first) = self.stack.last_mut() {
            if *first {
                *first = false;
            } else {
                self.out.push(',');
            }
        }
    }

    fn push_escaped(&mut self, s: &str) {
        self.out.push('"');
        for c in s.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(self.out, "\\u{:04x}", c as u32);
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }

    fn raw_f64(&mut self, v: f64) {
        if v.is_finite() {
            let _ = write!(self.out, "{v}");
        } else {
            self.out.push_str("null");
        }
    }

    /// Opens the root object (or an object element inside an array).
    pub fn begin_object(&mut self) {
        self.pre_value();
        self.out.push('{');
        self.stack.push(true);
    }

    pub fn end_object(&mut self) {
        self.stack.pop();
        self.out.push('}');
    }

    /// Opens `"key": {` inside the current object.
    pub fn begin_object_field(&mut self, key: &str) {
        self.pre_value();
        self.push_escaped(key);
        self.out.push(':');
        self.out.push('{');
        self.stack.push(true);
    }

    /// Opens `"key": [` inside the current object.
    pub fn begin_array_field(&mut self, key: &str) {
        self.pre_value();
        self.push_escaped(key);
        self.out.push(':');
        self.out.push('[');
        self.stack.push(true);
    }

    pub fn end_array(&mut self) {
        self.stack.pop();
        self.out.push(']');
    }

    pub fn field_u64(&mut self, key: &str, v: u64) {
        self.pre_value();
        self.push_escaped(key);
        self.out.push(':');
        let _ = write!(self.out, "{v}");
    }

    pub fn field_f64(&mut self, key: &str, v: f64) {
        self.pre_value();
        self.push_escaped(key);
        self.out.push(':');
        self.raw_f64(v);
    }

    pub fn field_str(&mut self, key: &str, v: &str) {
        self.pre_value();
        self.push_escaped(key);
        self.out.push(':');
        self.push_escaped(v);
    }

    pub fn field_bool(&mut self, key: &str, v: bool) {
        self.pre_value();
        self.push_escaped(key);
        self.out.push(':');
        self.out.push_str(if v { "true" } else { "false" });
    }

    /// Appends a bare number element inside the current array.
    pub fn elem_u64(&mut self, v: u64) {
        self.pre_value();
        let _ = write!(self.out, "{v}");
    }

    /// Appends a bare float element inside the current array.
    pub fn elem_f64(&mut self, v: f64) {
        self.pre_value();
        self.raw_f64(v);
    }

    /// The serialised document.
    #[must_use]
    pub fn finish(self) -> String {
        self.out
    }
}

// ---------------------------------------------------------------------------
// Prometheus text-format writer
// ---------------------------------------------------------------------------

/// An append-only writer for the Prometheus text exposition format.
#[derive(Debug, Default)]
pub struct PromWriter {
    out: String,
}

impl PromWriter {
    #[must_use]
    pub fn new() -> Self {
        PromWriter::default()
    }

    /// Emits a `# HELP` line.
    pub fn help(&mut self, name: &str, text: &str) {
        let _ = writeln!(self.out, "# HELP {name} {text}");
    }

    /// Emits a `# TYPE` line (`kind` is `counter`/`gauge`/`histogram`/…).
    pub fn typ(&mut self, name: &str, kind: &str) {
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    /// Emits one sample line, with optional labels.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                self.out.push_str(k);
                self.out.push_str("=\"");
                for c in v.chars() {
                    match c {
                        '\\' => self.out.push_str("\\\\"),
                        '"' => self.out.push_str("\\\""),
                        '\n' => self.out.push_str("\\n"),
                        c => self.out.push(c),
                    }
                }
                self.out.push('"');
            }
            self.out.push('}');
        }
        self.out.push(' ');
        if value.is_nan() {
            self.out.push_str("NaN");
        } else if value.is_infinite() {
            self.out.push_str(if value > 0.0 { "+Inf" } else { "-Inf" });
        } else {
            let _ = write!(self.out, "{value}");
        }
        self.out.push('\n');
    }

    /// The serialised exposition text.
    #[must_use]
    pub fn finish(self) -> String {
        self.out
    }
}

// ---------------------------------------------------------------------------
// JSON validity checker (recursive-descent, depth-bounded)
// ---------------------------------------------------------------------------

/// Whether `s` is one complete, syntactically valid JSON value.
#[must_use]
pub fn json_is_valid(s: &str) -> bool {
    let b = s.as_bytes();
    let mut i = 0usize;
    skip_ws(b, &mut i);
    if !json_value(b, &mut i, 0) {
        return false;
    }
    skip_ws(b, &mut i);
    i == b.len()
}

const MAX_DEPTH: usize = 128;

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn eat(b: &[u8], i: &mut usize, lit: &str) -> bool {
    if b[*i..].starts_with(lit.as_bytes()) {
        *i += lit.len();
        true
    } else {
        false
    }
}

fn json_value(b: &[u8], i: &mut usize, depth: usize) -> bool {
    if depth > MAX_DEPTH || *i >= b.len() {
        return false;
    }
    match b[*i] {
        b'{' => json_object(b, i, depth),
        b'[' => json_array(b, i, depth),
        b'"' => json_string(b, i),
        b't' => eat(b, i, "true"),
        b'f' => eat(b, i, "false"),
        b'n' => eat(b, i, "null"),
        _ => json_number(b, i),
    }
}

fn json_object(b: &[u8], i: &mut usize, depth: usize) -> bool {
    *i += 1; // '{'
    skip_ws(b, i);
    if *i < b.len() && b[*i] == b'}' {
        *i += 1;
        return true;
    }
    loop {
        skip_ws(b, i);
        if *i >= b.len() || b[*i] != b'"' || !json_string(b, i) {
            return false;
        }
        skip_ws(b, i);
        if *i >= b.len() || b[*i] != b':' {
            return false;
        }
        *i += 1;
        skip_ws(b, i);
        if !json_value(b, i, depth + 1) {
            return false;
        }
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b'}') => {
                *i += 1;
                return true;
            }
            _ => return false,
        }
    }
}

fn json_array(b: &[u8], i: &mut usize, depth: usize) -> bool {
    *i += 1; // '['
    skip_ws(b, i);
    if *i < b.len() && b[*i] == b']' {
        *i += 1;
        return true;
    }
    loop {
        skip_ws(b, i);
        if !json_value(b, i, depth + 1) {
            return false;
        }
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b']') => {
                *i += 1;
                return true;
            }
            _ => return false,
        }
    }
}

fn json_string(b: &[u8], i: &mut usize) -> bool {
    *i += 1; // opening '"'
    while *i < b.len() {
        match b[*i] {
            b'"' => {
                *i += 1;
                return true;
            }
            b'\\' => {
                *i += 1;
                match b.get(*i) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *i += 1,
                    Some(b'u') => {
                        *i += 1;
                        for _ in 0..4 {
                            if !b.get(*i).is_some_and(u8::is_ascii_hexdigit) {
                                return false;
                            }
                            *i += 1;
                        }
                    }
                    _ => return false,
                }
            }
            0x00..=0x1f => return false, // raw control char
            _ => *i += 1,
        }
    }
    false
}

fn json_number(b: &[u8], i: &mut usize) -> bool {
    let start = *i;
    if b.get(*i) == Some(&b'-') {
        *i += 1;
    }
    let int_start = *i;
    while b.get(*i).is_some_and(u8::is_ascii_digit) {
        *i += 1;
    }
    let int_len = *i - int_start;
    if int_len == 0 {
        return false;
    }
    // no leading zeros ("01" is invalid JSON)
    if int_len > 1 && b[int_start] == b'0' {
        return false;
    }
    if b.get(*i) == Some(&b'.') {
        *i += 1;
        let frac_start = *i;
        while b.get(*i).is_some_and(u8::is_ascii_digit) {
            *i += 1;
        }
        if *i == frac_start {
            return false;
        }
    }
    if matches!(b.get(*i), Some(b'e' | b'E')) {
        *i += 1;
        if matches!(b.get(*i), Some(b'+' | b'-')) {
            *i += 1;
        }
        let exp_start = *i;
        while b.get(*i).is_some_and(u8::is_ascii_digit) {
            *i += 1;
        }
        if *i == exp_start {
            return false;
        }
    }
    *i > start
}

// ---------------------------------------------------------------------------
// Prometheus text-format validity checker
// ---------------------------------------------------------------------------

/// Whether `s` parses as Prometheus text exposition format: every
/// non-empty line is a `# HELP`/`# TYPE`/comment line or a sample of the
/// form `name{labels} value`, with well-formed metric names, quoted
/// label values, and a float-parsable value.
#[must_use]
pub fn prometheus_is_valid(s: &str) -> bool {
    s.lines().all(prom_line_is_valid)
}

fn is_metric_name_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_' || c == ':'
}

fn is_metric_name_char(c: char) -> bool {
    is_metric_name_start(c) || c.is_ascii_digit()
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if is_metric_name_start(c) => chars.all(is_metric_name_char),
        _ => false,
    }
}

fn valid_sample_value(v: &str) -> bool {
    matches!(v, "+Inf" | "-Inf" | "Inf" | "NaN") || v.parse::<f64>().is_ok()
}

fn prom_line_is_valid(line: &str) -> bool {
    if line.trim().is_empty() {
        return true;
    }
    if let Some(rest) = line.strip_prefix('#') {
        let rest = rest.trim_start();
        if let Some(help) = rest.strip_prefix("HELP ") {
            // "# HELP <name> <any docstring>"
            return help.split_once(' ').map_or_else(
                || valid_metric_name(help.trim()),
                |(name, _)| valid_metric_name(name),
            );
        }
        if let Some(typ) = rest.strip_prefix("TYPE ") {
            let mut parts = typ.split_whitespace();
            let name_ok = parts.next().is_some_and(valid_metric_name);
            let kind_ok = matches!(
                parts.next(),
                Some("counter" | "gauge" | "histogram" | "summary" | "untyped")
            );
            return name_ok && kind_ok && parts.next().is_none();
        }
        return true; // bare comment
    }
    // sample: name[{labels}] value [timestamp]
    let name_end = line
        .char_indices()
        .find(|&(_, c)| !is_metric_name_char(c))
        .map_or(line.len(), |(i, _)| i);
    let (name, rest) = line.split_at(name_end);
    if !valid_metric_name(name) {
        return false;
    }
    let rest = match rest.strip_prefix('{') {
        Some(after_brace) => match prom_labels(after_brace) {
            Some(tail) => tail,
            None => return false,
        },
        None => rest,
    };
    let mut parts = rest.split_whitespace();
    let value_ok = parts.next().is_some_and(valid_sample_value);
    let ts_ok = parts.next().is_none_or(|ts| ts.parse::<i64>().is_ok());
    value_ok && ts_ok && parts.next().is_none()
}

/// Validates `name="value",…}` after the opening brace; returns the tail
/// after the closing brace, or `None` if malformed.
fn prom_labels(s: &str) -> Option<&str> {
    let mut rest = s;
    loop {
        rest = rest.trim_start_matches(' ');
        if let Some(tail) = rest.strip_prefix('}') {
            return Some(tail);
        }
        let eq = rest.find('=')?;
        if !valid_metric_name(rest[..eq].trim()) {
            return None;
        }
        rest = rest[eq + 1..].strip_prefix('"')?;
        // scan the quoted value, honouring backslash escapes
        let mut bytes = rest.char_indices();
        let close = loop {
            let (i, c) = bytes.next()?;
            match c {
                '\\' => {
                    bytes.next()?;
                }
                '"' => break i,
                _ => {}
            }
        };
        rest = &rest[close + 1..];
        rest = rest.strip_prefix(',').unwrap_or(rest);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_writer_produces_valid_nested_document() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("name", "engine \"a\"\n");
        w.field_u64("count", 42);
        w.field_f64("ratio", 0.5);
        w.field_f64("bad", f64::NAN); // must come out as null
        w.field_bool("ok", true);
        w.begin_object_field("nested");
        w.field_f64("p50", 1.25e-3);
        w.end_object();
        w.begin_array_field("buckets");
        w.elem_u64(1);
        w.elem_u64(2);
        w.elem_f64(3.5);
        w.end_array();
        w.begin_array_field("objs");
        w.begin_object();
        w.field_u64("id", 7);
        w.end_object();
        w.begin_object();
        w.field_u64("id", 8);
        w.end_object();
        w.end_array();
        w.end_object();
        let doc = w.finish();
        assert!(json_is_valid(&doc), "invalid JSON: {doc}");
        assert!(doc.contains("\"bad\":null"));
        assert!(doc.contains("\\\"a\\\"\\n"));
    }

    #[test]
    fn json_checker_rejects_malformed() {
        for bad in [
            "",
            "{",
            "}",
            "{\"a\":}",
            "{\"a\":1,}",
            "[1,2,]",
            "{'a':1}",
            "{\"a\" 1}",
            "nul",
            "01",
            "1.",
            "1e",
            "\"unterminated",
            "{\"a\":1} extra",
            "[1 2]",
        ] {
            assert!(!json_is_valid(bad), "accepted: {bad:?}");
        }
    }

    #[test]
    fn json_checker_accepts_wellformed() {
        for good in [
            "0",
            "-1.5e-3",
            "null",
            "true",
            "[]",
            "{}",
            "{\"a\":[1,{\"b\":\"\\u00e9\"}]}",
            "  {\"x\": -0.25}  ",
        ] {
            assert!(json_is_valid(good), "rejected: {good:?}");
        }
    }

    #[test]
    fn prom_writer_produces_valid_exposition() {
        let mut w = PromWriter::new();
        w.help("mbt_cache_hits_total", "Plan cache hits.");
        w.typ("mbt_cache_hits_total", "counter");
        w.sample("mbt_cache_hits_total", &[], 17.0);
        w.typ("mbt_eval_latency_seconds", "histogram");
        w.sample("mbt_eval_latency_seconds_bucket", &[("le", "0.001")], 12.0);
        w.sample("mbt_eval_latency_seconds_bucket", &[("le", "+Inf")], 15.0);
        w.sample("mbt_eval_latency_seconds_sum", &[], 0.125);
        w.sample("mbt_eval_latency_seconds_count", &[], 15.0);
        w.sample(
            "mbt_plan_requests_total",
            &[("dataset", "d\"q\""), ("kind", "potential")],
            3.0,
        );
        let text = w.finish();
        assert!(prometheus_is_valid(&text), "invalid exposition:\n{text}");
    }

    #[test]
    fn prom_checker_rejects_malformed() {
        for bad in [
            "1metric 2",
            "name",             // sample line with no value
            "name{le=0.1} 2",   // unquoted label value
            "name{le=\"x} 2",   // unterminated label value
            "name abc",         // non-float value
            "# TYPE name enum", // bad metric type
            "name 1 2 3",       // trailing junk
        ] {
            assert!(!prometheus_is_valid(bad), "accepted: {bad:?}");
        }
    }

    #[test]
    fn prom_checker_accepts_edge_cases() {
        for good in [
            "",
            "# just a comment",
            "up 1",
            "up 1 1700000000",
            "metric{a=\"b\",c=\"d\\\"e\"} +Inf",
            "metric{} 0.5",
        ] {
            assert!(prometheus_is_valid(good), "rejected: {good:?}");
        }
    }
}
