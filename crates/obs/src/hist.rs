//! Fixed-bucket latency histograms.
//!
//! 64 half-octave (√2-spaced) buckets starting at 1 µs: bucket `k`
//! covers `[1000·2^(k/2), 1000·2^((k+1)/2))` nanoseconds, with bucket 0
//! also absorbing everything below 1 µs and bucket 63 everything above
//! ~40 minutes. Recording is a handful of relaxed `fetch_add`s — no
//! locks, no allocation — and quantiles are estimated from a snapshot by
//! geometric interpolation inside the covering bucket, so each estimate
//! carries at most a half-bucket (≈ ±19 %) relative error by
//! construction.

use mbt_check::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of histogram buckets.
pub const BUCKETS: usize = 64;

/// First bucket boundary in nanoseconds (1 µs).
const BASE_NS: u64 = 1000;

/// √2 in Q15 fixed point (`⌊√2 · 2^15⌋`), for the half-octave test.
const SQRT2_Q15: u64 = 46_341;

/// The bucket index covering a latency of `ns` nanoseconds.
#[must_use]
pub fn bucket_of(ns: u64) -> usize {
    let q = ns / BASE_NS;
    if q == 0 {
        return 0;
    }
    let e = q.ilog2() as usize; // floor(log2(ns / 1 µs))
    if e >= 32 {
        return BUCKETS - 1;
    }
    // half-octave boundary 1000·2^e·√2 (floored, √2 in Q15); the true
    // boundary is irrational, so `ns > floor(h)` ⟺ `ns ≥ h`
    let half_boundary = ((BASE_NS << e) * SQRT2_Q15) >> 15;
    let k = 2 * e + usize::from(ns > half_boundary);
    k.min(BUCKETS - 1)
}

/// Lower bound of bucket `k` in nanoseconds (`1000 · 2^(k/2)`), as used
/// for quantile interpolation and Prometheus `le` bounds. Bucket 0's
/// true lower bound is 0.
#[must_use]
pub fn bucket_lower_ns(k: usize) -> f64 {
    1000.0 * 2f64.powf(k as f64 / 2.0)
}

/// A lock-free latency histogram (relaxed atomics only).
#[derive(Debug)]
pub struct Histogram {
    counts: [AtomicU64; BUCKETS],
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Histogram {
    /// An empty histogram (usable in `static` position).
    #[must_use]
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)] // array-init seed
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            counts: [ZERO; BUCKETS],
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    /// Records one observation of `ns` nanoseconds. Allocation-free.
    pub fn record_ns(&self, ns: u64) {
        // ordering: independent monotone counters; snapshots are
        // documented as statistical under concurrent writes
        self.counts[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        // ordering: independent monotone counter (see above)
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        // ordering: monotone max; fetch_max is atomic per location
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Records one observed duration. Allocation-free.
    pub fn record(&self, took: Duration) {
        self.record_ns(u64::try_from(took.as_nanos()).unwrap_or(u64::MAX));
    }

    /// A point-in-time copy. Individual fields are loaded separately, so
    /// a snapshot taken under concurrent writes is a statistical view;
    /// at quiescence it is exact. `count` is derived from the bucket
    /// counts, so `count == counts.iter().sum()` always holds.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = [0u64; BUCKETS];
        for (dst, src) in counts.iter_mut().zip(&self.counts) {
            // ordering: statistical snapshot; fields are documented as
            // individually loaded, exact only at quiescence
            *dst = src.load(Ordering::Relaxed);
        }
        let count = counts.iter().sum();
        HistogramSnapshot {
            counts,
            count,
            // ordering: statistical snapshot (see above)
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            // ordering: statistical snapshot (see above)
            max_ns: self.max_ns.load(Ordering::Relaxed),
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`bucket_of`]).
    pub counts: [u64; BUCKETS],
    /// Total observations (sum of `counts`).
    pub count: u64,
    /// Sum of all observed values in nanoseconds.
    pub sum_ns: u64,
    /// Largest observed value in nanoseconds.
    pub max_ns: u64,
}

impl HistogramSnapshot {
    /// A snapshot with no observations.
    #[must_use]
    pub const fn empty() -> Self {
        HistogramSnapshot {
            counts: [0; BUCKETS],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }

    /// Mean observation in nanoseconds (0 when empty).
    #[must_use]
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Estimated quantile `q ∈ [0, 1]` in nanoseconds: geometric
    /// interpolation inside the covering bucket, clamped to `max_ns`.
    /// Returns 0 when empty.
    #[must_use]
    pub fn quantile_ns(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cum = 0u64;
        for (k, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let before = cum;
            cum += c;
            if (cum as f64) < rank {
                continue;
            }
            let frac = ((rank - before as f64) / c as f64).clamp(0.0, 1.0);
            let lo = bucket_lower_ns(k).max(1.0);
            let hi = bucket_lower_ns(k + 1).min(self.max_ns as f64).max(lo);
            return (lo * (hi / lo).powf(frac)).min(self.max_ns as f64);
        }
        self.max_ns as f64
    }

    /// Median latency estimate in nanoseconds.
    #[must_use]
    pub fn p50_ns(&self) -> f64 {
        self.quantile_ns(0.50)
    }

    /// 95th-percentile latency estimate in nanoseconds.
    #[must_use]
    pub fn p95_ns(&self) -> f64 {
        self.quantile_ns(0.95)
    }

    /// 99th-percentile latency estimate in nanoseconds.
    #[must_use]
    pub fn p99_ns(&self) -> f64 {
        self.quantile_ns(0.99)
    }

    /// Folds `other` into `self`: bucket counts and sums add, `max_ns`
    /// takes the larger value. Used to aggregate per-plan histograms
    /// into per-dataset (or engine-wide) distributions.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        // below 1 µs all land in bucket 0
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(999), 0);
        // octave starts: 1 µs, 2 µs, 4 µs → buckets 0, 2, 4
        assert_eq!(bucket_of(1_000), 0);
        assert_eq!(bucket_of(2_000), 2);
        assert_eq!(bucket_of(4_000), 4);
        // half-octave: the √2 µs ≈ 1414.2 ns boundary starts bucket 1
        assert_eq!(bucket_of(1_415), 1);
        assert_eq!(bucket_of(1_414), 0);
        // monotone non-decreasing over a wide sweep
        let mut prev = 0;
        let mut ns = 1u64;
        while ns < u64::MAX / 3 {
            let b = bucket_of(ns);
            assert!(b >= prev, "bucket_of not monotone at {ns}");
            prev = b;
            ns = ns * 3 / 2 + 1;
        }
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bucket_lower_bounds_match_bucket_of() {
        for k in 1..BUCKETS {
            let lower = bucket_lower_ns(k);
            // a value just above the lower bound belongs to bucket k …
            let just_in = (lower * 1.001) as u64;
            assert_eq!(bucket_of(just_in), k, "bucket {k} lower bound");
            // … and one 1 % below belongs to an earlier bucket
            let just_below = (lower * 0.99) as u64;
            assert!(bucket_of(just_below) < k, "bucket {k} under-bound");
        }
    }

    #[test]
    fn quantiles_of_uniform_spread() {
        let h = Histogram::new();
        // 1..=1000 µs uniformly
        for us in 1..=1000u64 {
            h.record_ns(us * 1000);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.max_ns, 1_000_000);
        // half-octave buckets: each estimate within ~25 % of truth
        let p50 = s.p50_ns();
        assert!((350_000.0..=650_000.0).contains(&p50), "p50 = {p50}");
        let p99 = s.p99_ns();
        assert!((800_000.0..=1_000_000.0).contains(&p99), "p99 = {p99}");
        assert!(s.p50_ns() <= s.p95_ns() && s.p95_ns() <= s.p99_ns());
        let mean = s.mean_ns();
        assert!((mean - 500_500.0).abs() < 1.0, "mean = {mean}");
    }

    #[test]
    fn merge_adds_counts_and_keeps_max() {
        let a = Histogram::new();
        let b = Histogram::new();
        for us in [5u64, 10, 20] {
            a.record_ns(us * 1000);
        }
        b.record_ns(400_000);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count, 4);
        assert_eq!(merged.sum_ns, 5_000 + 10_000 + 20_000 + 400_000);
        assert_eq!(merged.max_ns, 400_000);
        // merging both into one histogram gives the identical snapshot
        let all = Histogram::new();
        for ns in [5_000u64, 10_000, 20_000, 400_000] {
            all.record_ns(ns);
        }
        assert_eq!(merged, all.snapshot());
        // merging an empty snapshot is a no-op
        let before = merged;
        merged.merge(&HistogramSnapshot::empty());
        assert_eq!(merged, before);
    }

    #[test]
    fn empty_snapshot_is_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s, HistogramSnapshot::empty());
        assert!(s.p50_ns().abs() < f64::EPSILON);
        assert!(s.mean_ns().abs() < f64::EPSILON);
    }

    #[test]
    fn single_observation_quantiles_clamp_to_max() {
        let h = Histogram::new();
        h.record(Duration::from_micros(123));
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.max_ns, 123_000);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            let v = s.quantile_ns(q);
            assert!(v <= 123_000.0 + 1e-9, "q{q} = {v}");
            assert!(v >= 60_000.0, "q{q} = {v} below half the bucket");
        }
    }

    #[test]
    fn concurrent_recording_totals() {
        use std::sync::Arc;
        let h = Arc::new(Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record_ns((t * 10_000 + i) * 100);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count, 40_000);
        assert_eq!(s.counts.iter().sum::<u64>(), 40_000);
        assert_eq!(s.max_ns, 3_999_900);
    }
}
