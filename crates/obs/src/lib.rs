//! mbt-obs: zero-dependency observability primitives for the treecode
//! serving stack.
//!
//! Four small pieces, each usable on its own (DESIGN.md §11):
//!
//! * [`span`] — phase spans (`admission_wait`, `plan_build`, `compile`,
//!   `sweep`, `batch_execute`) behind a [`Recorder`] trait and a
//!   process-wide hook that costs one atomic load when disabled,
//! * [`ring`] — a bounded lock-free multi-producer ring (seqlock slots
//!   over `AtomicU64`, no `unsafe`) backing the default [`RingRecorder`]
//!   and the engine's [`SlowLog`],
//! * [`hist`] — fixed-bucket (64 × half-octave) latency histograms with
//!   p50/p95/p99 estimation from a lock-free snapshot,
//! * [`export`] — hand-rolled JSON and Prometheus text writers plus the
//!   validity checkers the bench smoke tests assert with.
//!
//! Everything here is allocation-free on the recording path; the modules
//! `span`, `ring`, and `hist` sit under the `cargo xtask lint` hot-path
//! allocation lint.

#![forbid(unsafe_code)]

pub mod export;
pub mod hist;
pub mod ring;
pub mod span;

pub use export::{json_is_valid, prometheus_is_valid, JsonWriter, PromWriter};
pub use hist::{bucket_lower_ns, bucket_of, Histogram, HistogramSnapshot, BUCKETS};
pub use ring::{Ring, RingRecorder, SlowLog, SlowQuery};
pub use span::{
    enabled, epoch, global, install_global, record_duration, record_since, NoopRecorder, Phase,
    Recorder, Span,
};
