//! Bounded, lock-free, multi-producer record rings.
//!
//! [`Ring`] stores fixed-width `[u64; W]` records in a power-of-two slot
//! array. Writers claim a ticket with one `fetch_add` and publish through
//! a per-slot sequence word (a seqlock): the slot's `seq` is odd while a
//! write is in flight and settles at `2·ticket + 2` once generation
//! `ticket` is fully stored. A writer that finds its slot odd (a lapped
//! writer still mid-flight) or already past its generation drops the
//! record — the ring favours bounded memory and wait-freedom over
//! completeness, the right trade for diagnostics.
//!
//! Everything is `AtomicU64`: there is no `unsafe`, and readers can never
//! observe torn words — only skip slots that are mid-write.

use mbt_check::sync::atomic::{AtomicU64, Ordering};

use crate::span::{Phase, Recorder, Span};

/// One fixed-width record slot guarded by a sequence word.
#[derive(Debug)]
struct Slot<const W: usize> {
    /// `0` = never written, odd = write in flight, `2g + 2` = holds
    /// generation `g`.
    seq: AtomicU64,
    words: [AtomicU64; W],
}

impl<const W: usize> Slot<W> {
    fn new() -> Self {
        Slot {
            seq: AtomicU64::new(0),
            words: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A bounded multi-producer ring of `W`-word records.
#[derive(Debug)]
pub struct Ring<const W: usize> {
    slots: Box<[Slot<W>]>,
    head: AtomicU64,
    read_retries: AtomicU64,
}

impl<const W: usize> Ring<W> {
    /// A ring with `capacity` slots, rounded up to a power of two.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1).next_power_of_two();
        // lint: allow(alloc, cold path: one-time construction of the fixed slot array)
        let slots: Vec<Slot<W>> = (0..cap).map(|_| Slot::new()).collect();
        Ring {
            slots: slots.into_boxed_slice(),
            head: AtomicU64::new(0),
            read_retries: AtomicU64::new(0),
        }
    }

    /// Number of slots (a power of two).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total records ever pushed, including ones since overwritten and
    /// ones dropped under slot contention.
    #[must_use]
    pub fn pushed(&self) -> u64 {
        // ordering: monotone statistic, no other memory depends on it
        self.head.load(Ordering::Relaxed)
    }

    /// Seqlock validation failures observed by [`snapshot`](Self::snapshot)
    /// (each one re-read the slot; see `SNAPSHOT_RETRIES`).
    #[must_use]
    pub fn read_retries(&self) -> u64 {
        // ordering: monotone statistic, no other memory depends on it
        self.read_retries.load(Ordering::Relaxed)
    }

    /// Appends a record. Wait-free and allocation-free. Returns whether
    /// the record was published (`false` when a lapped writer still held
    /// the slot, in which case the record is dropped).
    pub fn push(&self, words: [u64; W]) -> bool {
        // ordering: ticket allocation is pure arithmetic; the slot CAS
        // below is what synchronizes ownership
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let idx = (ticket as usize) & (self.slots.len() - 1);
        let slot = &self.slots[idx];
        let writing = 2 * ticket + 1; // odd: generation `ticket` in flight
                                      // ordering: advisory pre-check only; the CAS re-validates `seen`
        let seen = slot.seq.load(Ordering::Relaxed);
        if seen & 1 == 1 || seen >= writing {
            // mid-flight lapped writer, or a later generation already
            // landed here: drop rather than tear
            return false;
        }
        // ordering: Acquire on success pairs with the previous writer's
        // Release publish, so this writer's word stores cannot be
        // reordered before the prior generation is fully out of flight
        if slot
            .seq
            .compare_exchange(seen, writing, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            return false; // racing writer won the slot
        }
        for (word, value) in slot.words.iter().zip(words) {
            // ordering: Release pairs with the reader's Acquire word
            // loads. Without it a reader could read this generation's
            // word yet still pass validation against the *previous*
            // generation's seq (no happens-before edge forces its
            // validating re-load to see our odd seq) — mixing words from
            // two generations. Found by the mbt-check model suite
            // (ring_snapshot_never_tears).
            word.store(value, Ordering::Release);
        }
        // ordering: Release publishes the word stores; a reader that
        // acquires this even value observes the complete record
        slot.seq.store(writing + 1, Ordering::Release);
        true
    }

    /// Bounded attempts per slot when the seqlock validation fails
    /// mid-read (a writer republished the slot between the two `seq`
    /// loads). Each failed validation re-reads from the new generation;
    /// after this many failures the slot is skipped — the ring favours a
    /// prompt, possibly incomplete snapshot over an unbounded spin.
    const SNAPSHOT_RETRIES: usize = 4;

    /// A consistent copy of every published record, oldest first.
    /// Allocates (cold path); skips slots that are mid-write, retrying a
    /// slot up to [`SNAPSHOT_RETRIES`](Self::SNAPSHOT_RETRIES) times when
    /// its seqlock validation fails (counted in
    /// [`read_retries`](Self::read_retries)).
    #[must_use]
    pub fn snapshot(&self) -> Vec<[u64; W]> {
        // lint: allow(alloc, cold path: snapshot copies records out of the ring)
        let mut entries: Vec<(u64, [u64; W])> = Vec::with_capacity(self.slots.len());
        for slot in &*self.slots {
            // ordering: Acquire pairs with the writer's Release publish:
            // an even seq here means the matching word stores are visible
            let mut seq = slot.seq.load(Ordering::Acquire);
            for _attempt in 0..Self::SNAPSHOT_RETRIES {
                if seq == 0 || seq & 1 == 1 {
                    break; // never written, or a write is in flight
                }
                let mut words = [0u64; W];
                for (dst, src) in words.iter_mut().zip(&slot.words) {
                    // ordering: Acquire pairs with the writer's Release
                    // word stores: if this load observes a newer
                    // generation's word, the validating seq re-load
                    // below is forced to observe that generation's odd
                    // seq too, so validation fails and we retry instead
                    // of keeping a mixed record
                    *dst = src.load(Ordering::Acquire);
                }
                // ordering: validation load; equality with the first read
                // proves no writer republished the slot in between
                let seq2 = slot.seq.load(Ordering::Acquire);
                if seq2 == seq {
                    entries.push(((seq - 2) / 2, words));
                    break;
                }
                // A writer landed mid-read: retry from the new generation
                // instead of silently losing the slot.
                // ordering: monotone statistic, no other memory depends on it
                self.read_retries.fetch_add(1, Ordering::Relaxed);
                seq = seq2;
            }
        }
        entries.sort_unstable_by_key(|&(generation, _)| generation);
        // lint: allow(alloc, cold path: snapshot result buffer)
        entries.into_iter().map(|(_, words)| words).collect()
    }
}

/// The default [`Recorder`]: a bounded ring of [`Span`] records, plus a
/// counter of spans dropped under slot contention.
#[derive(Debug)]
pub struct RingRecorder {
    ring: Ring<3>,
    dropped: AtomicU64,
}

impl RingRecorder {
    /// A recorder retaining the most recent `capacity` spans (rounded up
    /// to a power of two).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        RingRecorder {
            ring: Ring::new(capacity),
            dropped: AtomicU64::new(0),
        }
    }

    /// Spans currently resident, oldest first. Allocates (cold path).
    #[must_use]
    pub fn spans(&self) -> Vec<Span> {
        self.ring
            .snapshot()
            .into_iter()
            .filter_map(|[phase, start_ns, dur_ns]| {
                Some(Span {
                    phase: Phase::from_index(phase)?,
                    start_ns,
                    dur_ns,
                })
            })
            // lint: allow(alloc, cold path: snapshot result buffer)
            .collect()
    }

    /// Total spans ever recorded (resident, overwritten, or dropped).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.ring.pushed()
    }

    /// Spans dropped because a lapped writer still held the target slot.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        // ordering: monotone statistic, no other memory depends on it
        self.dropped.load(Ordering::Relaxed)
    }

    /// Seqlock validation failures retried while reading spans out (see
    /// [`Ring::read_retries`]).
    #[must_use]
    pub fn read_retries(&self) -> u64 {
        self.ring.read_retries()
    }
}

impl Recorder for RingRecorder {
    fn record(&self, span: Span) {
        if !self
            .ring
            .push([span.phase.index(), span.start_ns, span.dur_ns])
        {
            // ordering: monotone statistic, no other memory depends on it
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// One slow-query record, copied out of the [`SlowLog`] ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlowQuery {
    /// Raw dataset id of the offending request.
    pub dataset: u64,
    /// Target points in the request.
    pub points: u64,
    /// End-to-end service time in nanoseconds.
    pub total_ns: u64,
    /// Of which: admission-gate wait in nanoseconds.
    pub wait_ns: u64,
}

/// A bounded log of queries that exceeded the engine's slow threshold.
/// Appending is wait-free and allocation-free; reading allocates.
#[derive(Debug)]
pub struct SlowLog {
    ring: Ring<4>,
}

impl SlowLog {
    /// A log retaining the most recent `capacity` entries (rounded up to
    /// a power of two).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        SlowLog {
            ring: Ring::new(capacity),
        }
    }

    /// Appends one entry; allocation-free.
    pub fn record(&self, q: SlowQuery) {
        let _ = self.ring.push([q.dataset, q.points, q.total_ns, q.wait_ns]);
    }

    /// Resident entries, oldest first. Allocates (cold path).
    #[must_use]
    pub fn entries(&self) -> Vec<SlowQuery> {
        self.ring
            .snapshot()
            .into_iter()
            .map(|[dataset, points, total_ns, wait_ns]| SlowQuery {
                dataset,
                points,
                total_ns,
                wait_ns,
            })
            // lint: allow(alloc, cold path: snapshot result buffer)
            .collect()
    }

    /// Total entries ever recorded (resident or overwritten).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.ring.pushed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_below_capacity() {
        let ring: Ring<2> = Ring::new(8);
        for i in 0..5u64 {
            assert!(ring.push([i, i * 10]));
        }
        let got = ring.snapshot();
        assert_eq!(got, vec![[0, 0], [1, 10], [2, 20], [3, 30], [4, 40]]);
        assert_eq!(ring.pushed(), 5);
    }

    #[test]
    fn wraparound_keeps_newest() {
        let ring: Ring<1> = Ring::new(4);
        for i in 0..11u64 {
            ring.push([i]);
        }
        // capacity 4: generations 7..=10 survive
        assert_eq!(ring.snapshot(), vec![[7], [8], [9], [10]]);
        assert_eq!(ring.capacity(), 4);
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        let ring: Ring<1> = Ring::new(5);
        assert_eq!(ring.capacity(), 8);
        assert_eq!(Ring::<1>::new(0).capacity(), 1);
    }

    #[test]
    fn concurrent_pushes_never_tear() {
        // Each record is [tag, tag * K]: a torn slot would break the
        // invariant between the two words.
        const K: u64 = 0x9e37_79b9;
        let ring: Arc<Ring<2>> = Arc::new(Ring::new(64));
        let threads: Vec<_> = (0..8u64)
            .map(|t| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..2_000u64 {
                        let tag = t * 1_000_000 + i;
                        ring.push([tag, tag.wrapping_mul(K)]);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = ring.snapshot();
        assert!(!snap.is_empty() && snap.len() <= 64);
        for [tag, check] in snap {
            assert_eq!(check, tag.wrapping_mul(K), "torn record for tag {tag}");
        }
        assert_eq!(ring.pushed(), 16_000);
    }

    #[test]
    fn quiescent_snapshot_never_retries() {
        let ring: Ring<2> = Ring::new(4);
        for i in 0..9u64 {
            ring.push([i, i * 3]);
        }
        assert_eq!(ring.snapshot().len(), 4);
        assert_eq!(ring.read_retries(), 0);
    }

    #[test]
    fn recorder_roundtrips_spans() {
        let rec = RingRecorder::new(16);
        rec.record(Span {
            phase: Phase::Sweep,
            start_ns: 5,
            dur_ns: 7,
        });
        rec.record(Span {
            phase: Phase::PlanBuild,
            start_ns: 20,
            dur_ns: 1,
        });
        let spans = rec.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].phase, Phase::Sweep);
        assert_eq!(spans[0].start_ns, 5);
        assert_eq!(spans[0].dur_ns, 7);
        assert_eq!(spans[1].phase, Phase::PlanBuild);
        assert_eq!(rec.recorded(), 2);
        assert_eq!(rec.dropped(), 0);
    }

    #[test]
    fn slow_log_roundtrips() {
        let log = SlowLog::new(4);
        let q = SlowQuery {
            dataset: 3,
            points: 128,
            total_ns: 5_000_000,
            wait_ns: 1_000,
        };
        log.record(q);
        assert_eq!(log.entries(), vec![q]);
        assert_eq!(log.recorded(), 1);
    }
}
