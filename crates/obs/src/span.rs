//! Phase spans and the process-wide recorder hook.
//!
//! The serving path is instrumented with *spans*: one `(phase, start,
//! duration)` triple per timed region. Producers call [`record_since`] /
//! [`record_duration`]; both are a single atomic load when no recorder is
//! installed, so the hooks cost nothing in un-instrumented processes.
//! A recorder is installed at most once per process with
//! [`install_global`] — typically a leaked
//! [`RingRecorder`](crate::ring::RingRecorder).

use mbt_check::sync::OnceLock;
use std::time::{Duration, Instant};

/// A serving-path phase measured by a [`Span`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Time a request spent queued in the admission gate before a permit.
    AdmissionWait,
    /// Octree + upward-pass construction of one plan (a cache miss).
    PlanBuild,
    /// Interaction-list compilation inside one compiled sweep.
    Compile,
    /// One evaluation sweep over a packed slab of target points.
    Sweep,
    /// One drained batch: evaluation plus per-caller output scatter.
    BatchExecute,
    /// One sharded fan-out/reduce: skeleton far-field resolution plus
    /// per-shard near sweeps and the partial-result reduction.
    ShardFanout,
    /// One compiled-FMM batch sweep (L2P over the precomputed locals plus
    /// the gathered near field; the M2L/L2L downward pass is part of the
    /// plan build and lands in [`Phase::PlanBuild`]).
    FmmSweep,
    /// One direct-summation sweep (the tiny-n routed backend).
    DirectSweep,
}

impl Phase {
    /// Every phase, in wire-index order.
    pub const ALL: [Phase; 8] = [
        Phase::AdmissionWait,
        Phase::PlanBuild,
        Phase::Compile,
        Phase::Sweep,
        Phase::BatchExecute,
        Phase::ShardFanout,
        Phase::FmmSweep,
        Phase::DirectSweep,
    ];

    /// Stable snake_case name, used as a metric label.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::AdmissionWait => "admission_wait",
            Phase::PlanBuild => "plan_build",
            Phase::Compile => "compile",
            Phase::Sweep => "sweep",
            Phase::BatchExecute => "batch_execute",
            Phase::ShardFanout => "shard_fanout",
            Phase::FmmSweep => "fmm_sweep",
            Phase::DirectSweep => "direct_sweep",
        }
    }

    /// Wire index: this phase's position in [`Phase::ALL`].
    #[must_use]
    pub fn index(self) -> u64 {
        match self {
            Phase::AdmissionWait => 0,
            Phase::PlanBuild => 1,
            Phase::Compile => 2,
            Phase::Sweep => 3,
            Phase::BatchExecute => 4,
            Phase::ShardFanout => 5,
            Phase::FmmSweep => 6,
            Phase::DirectSweep => 7,
        }
    }

    /// Inverse of [`Phase::index`].
    #[must_use]
    pub fn from_index(i: u64) -> Option<Phase> {
        Phase::ALL.get(usize::try_from(i).ok()?).copied()
    }
}

/// One timed region: `phase` ran for `dur_ns` starting `start_ns`
/// nanoseconds after the process [`epoch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    pub phase: Phase,
    /// Nanoseconds since the process [`epoch`].
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// Sink for completed spans. Implementations must be cheap and
/// allocation-free: `record` is called from evaluation hot paths.
pub trait Recorder: Send + Sync {
    fn record(&self, span: Span);
}

/// Discards every span (the disabled default).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn record(&self, _span: Span) {}
}

static GLOBAL: OnceLock<&'static dyn Recorder> = OnceLock::new();
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// The process time origin that `Span::start_ns` is measured from.
/// Pinned on first use (no later than recorder installation).
#[must_use]
pub fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Installs the process-wide recorder. Returns `false` (and leaves the
/// existing recorder in place) if one was already installed.
pub fn install_global(recorder: &'static dyn Recorder) -> bool {
    let _ = epoch(); // pin the origin no later than installation
    GLOBAL.set(recorder).is_ok()
}

/// The installed recorder, if any.
#[must_use]
pub fn global() -> Option<&'static dyn Recorder> {
    GLOBAL.get().copied()
}

/// Whether a recorder is installed ([`record_since`] and
/// [`record_duration`] are no-ops otherwise).
#[must_use]
pub fn enabled() -> bool {
    GLOBAL.get().is_some()
}

/// Records `phase` as spanning `start ..` now. A single atomic load when
/// no recorder is installed; never allocates.
pub fn record_since(phase: Phase, start: Instant) {
    if let Some(recorder) = global() {
        let start_ns = saturating_ns(start.saturating_duration_since(epoch()));
        let dur_ns = saturating_ns(start.elapsed());
        recorder.record(Span {
            phase,
            start_ns,
            dur_ns,
        });
    }
}

/// Records `phase` with an externally-measured duration ending now.
/// A single atomic load when no recorder is installed; never allocates.
pub fn record_duration(phase: Phase, dur: Duration) {
    if let Some(recorder) = global() {
        let end_ns = saturating_ns(epoch().elapsed());
        let dur_ns = saturating_ns(dur);
        recorder.record(Span {
            phase,
            start_ns: end_ns.saturating_sub(dur_ns),
            dur_ns,
        });
    }
}

fn saturating_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_index_roundtrip() {
        for phase in Phase::ALL {
            assert_eq!(Phase::from_index(phase.index()), Some(phase));
        }
        assert_eq!(Phase::from_index(Phase::ALL.len() as u64), None);
        assert_eq!(Phase::from_index(u64::MAX), None);
    }

    #[test]
    fn phase_names_are_unique_metric_labels() {
        let mut names: Vec<&str> = Phase::ALL.iter().map(|p| p.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Phase::ALL.len());
        for name in names {
            assert!(name
                .chars()
                .all(|c| c.is_ascii_lowercase() || c == '_' || c.is_ascii_digit()));
        }
    }

    #[test]
    fn noop_recorder_accepts_spans() {
        NoopRecorder.record(Span {
            phase: Phase::Sweep,
            start_ns: 0,
            dur_ns: 1,
        });
    }
}
