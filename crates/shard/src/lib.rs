//! `mbt-shard` — Hilbert-partitioned sharding for treecode serving.
//!
//! One dataset = one octree = one cached plan caps the largest servable
//! dataset at the plan-cache byte budget and makes every cold build a
//! single serial critical path. This crate splits a particle set into `k`
//! **contiguous Hilbert-key ranges** ([`HilbertPartition`]) so each shard
//! can carry its own octree + coefficient arena (built, cached, and
//! evicted independently), and aggregates the shard roots into a
//! [`Skeleton`] — a one-level "local essential tree" whose per-shard
//! multipole expansions answer the cross-shard far field under the
//! paper's Theorem-1/2 MAC without opening the remote shard's plan.
//!
//! The partitioner rests on the defining Hilbert property (consecutive
//! keys are face-adjacent cells, see `mbt_geometry::hilbert`), so a
//! contiguous key range is a spatially compact volume: most external
//! points see most shards as MAC-acceptable clusters, and only the owning
//! and neighbouring shards are ever opened.
//!
//! Order discipline: [`HilbertPartition::split`] preserves each
//! particle's **original relative order** inside its shard. A `k = 1`
//! partition therefore reproduces the input list exactly, which makes the
//! single-shard serving path bit-identical to the unsharded one (tree
//! construction is deterministic in particle order).

#![forbid(unsafe_code)]

pub mod partition;
pub mod skeleton;

pub use partition::{HilbertPartition, ShardError, ShardInfo};
pub use skeleton::Skeleton;
