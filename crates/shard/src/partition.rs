//! The Hilbert partitioner: k contiguous, balanced key ranges.
//!
//! Particles are keyed on the Hilbert curve over the dataset bounds and
//! cut into `k` contiguous ranges at positional boundaries (`⌈n/k⌉`-sized
//! segments), so member counts differ by at most one and — because the
//! curve is proximity-preserving — each range is a spatially compact
//! volume. Boundaries landing inside an equal-key run are nudged to the
//! nearer run edge so particles sharing one quantized key never straddle a
//! cut (shard key ranges stay disjoint); if that would empty a shard the
//! cuts fall back to pure positional ones.
//!
//! The assignment itself is returned as a per-particle shard index, and
//! [`HilbertPartition::split`] materialises the shards **preserving each
//! particle's original relative order** — the property the engine's
//! `k = 1` bit-exactness guarantee rests on.

use mbt_geometry::{hilbert, Aabb, Particle};

/// Partitioning failures (bad shard counts; everything else is total).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// `count` must satisfy `1 ≤ count ≤ n`: zero shards is meaningless
    /// and more shards than particles would leave some empty.
    InvalidCount {
        /// The requested shard count.
        requested: usize,
        /// The number of particles available.
        particles: usize,
    },
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::InvalidCount {
                requested,
                particles,
            } => write!(
                f,
                "invalid shard count {requested} for {particles} particles \
                 (need 1 <= count <= n)"
            ),
        }
    }
}

impl std::error::Error for ShardError {}

/// Summary facts of one shard: its members, weight, and key range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardInfo {
    /// The shard's index in `0..count`.
    pub index: usize,
    /// Number of member particles.
    pub count: usize,
    /// Total absolute charge `Σ|qᵢ|` of the members — the weight the
    /// paper's error bounds grow with, and the balance criterion.
    pub weight: f64,
    /// Smallest member Hilbert key (inclusive).
    pub key_min: u64,
    /// Largest member Hilbert key (inclusive).
    pub key_max: u64,
}

/// A contiguous Hilbert partition of one particle set into `k` shards.
#[derive(Debug, Clone)]
pub struct HilbertPartition {
    /// `assignment[i]` is the shard owning particle `i` (original order).
    assignment: Vec<usize>,
    shards: Vec<ShardInfo>,
}

impl HilbertPartition {
    /// Partitions `particles` (keyed inside `bounds`) into `count`
    /// contiguous Hilbert ranges.
    pub fn new(
        particles: &[Particle],
        bounds: &Aabb,
        count: usize,
    ) -> Result<HilbertPartition, ShardError> {
        let n = particles.len();
        if count == 0 || count > n {
            return Err(ShardError::InvalidCount {
                requested: count,
                particles: n,
            });
        }
        // (key, original index): the index tiebreak keeps equal keys in
        // input order, so the curve order is a deterministic permutation
        let mut order: Vec<(u64, usize)> = particles
            .iter()
            .enumerate()
            .map(|(i, p)| (hilbert::key(p.position, bounds), i))
            .collect();
        order.sort_unstable();

        // positional boundaries, nudged off equal-key runs to the nearer
        // run edge (keeping cuts strictly increasing when both edges are
        // viable) so particles sharing a quantized key stay together
        let positional = |j: usize| j * n / count;
        let mut cuts: Vec<usize> = (0..=count).map(positional).collect();
        for j in 1..count {
            let c = cuts[j];
            if c == 0 || c == n || order[c].0 != order[c - 1].0 {
                continue;
            }
            let mut lo = c;
            while lo > 0 && order[lo].0 == order[lo - 1].0 {
                lo -= 1;
            }
            let mut hi = c;
            while hi < n && order[hi].0 == order[hi - 1].0 {
                hi += 1;
            }
            let (near, far) = if c - lo <= hi - c { (lo, hi) } else { (hi, lo) };
            cuts[j] = if near > cuts[j - 1] && near < n {
                near
            } else {
                far
            };
        }
        // one run can still swallow a whole shard (e.g. every key equal);
        // fall back to plain positional cuts — shards stay balanced and
        // non-empty, key disjointness becomes best-effort
        if cuts.windows(2).any(|w| w[0] >= w[1]) {
            cuts = (0..=count).map(positional).collect();
        }

        let mut assignment = vec![0usize; n];
        let mut shards = Vec::with_capacity(count);
        for s in 0..count {
            let seg = &order[cuts[s]..cuts[s + 1]];
            let mut weight = 0.0;
            for &(_, i) in seg {
                assignment[i] = s;
                weight += particles[i].charge.abs();
            }
            shards.push(ShardInfo {
                index: s,
                count: seg.len(),
                weight,
                key_min: seg[0].0,
                key_max: seg[seg.len() - 1].0,
            });
        }
        let partition = HilbertPartition { assignment, shards };
        #[cfg(feature = "validate")]
        if let Err(why) = partition.check_invariants() {
            // validate-mode contract: partition bugs are library bugs
            panic!("hilbert partition invariant violated: {why}"); // lint: allow(panic, validate-feature contract check, disabled in production builds)
        }
        Ok(partition)
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard summaries, in shard order.
    #[must_use]
    pub fn shards(&self) -> &[ShardInfo] {
        &self.shards
    }

    /// The shard owning each particle, in the particles' original order.
    #[must_use]
    pub fn assignment(&self) -> &[usize] {
        &self.assignment
    }

    /// The shard owning particle `i` (original order).
    #[must_use]
    pub fn shard_of(&self, i: usize) -> usize {
        self.assignment[i]
    }

    /// Materialises the shards from the same particle slice the partition
    /// was computed over. Within each shard, particles keep their
    /// **original relative order** — for `count = 1` the single shard is
    /// the input list verbatim.
    #[must_use]
    pub fn split(&self, particles: &[Particle]) -> Vec<Vec<Particle>> {
        let mut parts: Vec<Vec<Particle>> = self
            .shards
            .iter()
            .map(|s| Vec::with_capacity(s.count))
            .collect();
        for (i, p) in particles.iter().enumerate() {
            parts[self.assignment[i]].push(*p);
        }
        parts
    }

    /// `max / min` member count across shards (≥ 1; the positional cuts
    /// guarantee ≤ `⌈n/k⌉ / ⌊n/k⌋` absent equal-key nudging).
    #[must_use]
    pub fn count_ratio(&self) -> f64 {
        let max = self.shards.iter().map(|s| s.count).max().unwrap_or(0);
        let min = self.shards.iter().map(|s| s.count).min().unwrap_or(0);
        if min == 0 {
            f64::INFINITY
        } else {
            max as f64 / min as f64
        }
    }

    /// `max / min` absolute-charge weight across shards (infinite when a
    /// shard carries zero weight).
    #[must_use]
    pub fn weight_ratio(&self) -> f64 {
        let max = self.shards.iter().map(|s| s.weight).fold(0.0, f64::max);
        let min = self
            .shards
            .iter()
            .map(|s| s.weight)
            .fold(f64::INFINITY, f64::min);
        if min > 0.0 {
            max / min
        } else {
            f64::INFINITY
        }
    }

    /// Structural invariants: every particle assigned, shard summaries
    /// consistent with the assignment, counts summing to `n`, and key
    /// ranges ascending across shards.
    pub fn check_invariants(&self) -> Result<(), String> {
        let k = self.shards.len();
        if self.assignment.iter().any(|&s| s >= k) {
            return Err("assignment points past the last shard".to_string());
        }
        let total: usize = self.shards.iter().map(|s| s.count).sum();
        if total != self.assignment.len() {
            return Err(format!(
                "shard counts sum to {total}, expected {}",
                self.assignment.len()
            ));
        }
        for (s, info) in self.shards.iter().enumerate() {
            if info.index != s {
                return Err(format!("shard {s} labelled {}", info.index));
            }
            if info.count == 0 {
                return Err(format!("shard {s} is empty"));
            }
            if info.key_min > info.key_max {
                return Err(format!("shard {s} key range inverted"));
            }
        }
        for w in self.shards.windows(2) {
            if w[0].key_max > w[1].key_min {
                return Err(format!(
                    "shards {} and {} key ranges out of order",
                    w[0].index, w[1].index
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbt_geometry::distribution::{uniform_cube, ChargeModel};
    use mbt_geometry::Vec3;

    fn bounds_of(ps: &[Particle]) -> Aabb {
        let positions: Vec<Vec3> = ps.iter().map(|p| p.position).collect();
        Aabb::cubical_hull(&positions, 1e-9)
    }

    fn particles(n: usize, seed: u64) -> Vec<Particle> {
        uniform_cube(n, 1.0, ChargeModel::RandomSign { magnitude: 1.0 }, seed)
    }

    #[test]
    fn invalid_counts_are_rejected() {
        let ps = particles(10, 1);
        let b = bounds_of(&ps);
        assert_eq!(
            HilbertPartition::new(&ps, &b, 0).unwrap_err(),
            ShardError::InvalidCount {
                requested: 0,
                particles: 10
            }
        );
        assert_eq!(
            HilbertPartition::new(&ps, &b, 11).unwrap_err(),
            ShardError::InvalidCount {
                requested: 11,
                particles: 10
            }
        );
        assert!(!format!(
            "{}",
            ShardError::InvalidCount {
                requested: 0,
                particles: 10
            }
        )
        .is_empty());
    }

    #[test]
    fn k1_split_is_the_identity() {
        let ps = particles(257, 3);
        let b = bounds_of(&ps);
        let part = HilbertPartition::new(&ps, &b, 1).unwrap();
        assert_eq!(part.shard_count(), 1);
        assert!(part.assignment().iter().all(|&s| s == 0));
        let split = part.split(&ps);
        assert_eq!(split.len(), 1);
        assert_eq!(split[0], ps);
        assert!((part.count_ratio() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn counts_balance_and_cover() {
        let ps = particles(1000, 7);
        let b = bounds_of(&ps);
        for k in [2usize, 3, 4, 7, 8] {
            let part = HilbertPartition::new(&ps, &b, k).unwrap();
            part.check_invariants().unwrap();
            assert_eq!(part.shard_count(), k);
            let split = part.split(&ps);
            let total: usize = split.iter().map(Vec::len).sum();
            assert_eq!(total, ps.len());
            for (s, info) in part.shards().iter().enumerate() {
                assert_eq!(split[s].len(), info.count);
            }
            // distinct random positions: counts differ by at most one
            assert!(
                part.count_ratio() <= (ps.len().div_ceil(k)) as f64 / (ps.len() / k) as f64 + 1e-15,
                "k={k}: ratio {}",
                part.count_ratio()
            );
        }
    }

    #[test]
    fn split_preserves_original_relative_order() {
        let ps = particles(400, 11);
        let b = bounds_of(&ps);
        let part = HilbertPartition::new(&ps, &b, 4).unwrap();
        let split = part.split(&ps);
        for (s, shard) in split.iter().enumerate() {
            let expect: Vec<Particle> = ps
                .iter()
                .enumerate()
                .filter(|(i, _)| part.shard_of(*i) == s)
                .map(|(_, p)| *p)
                .collect();
            assert_eq!(shard, &expect);
        }
    }

    #[test]
    fn key_ranges_are_contiguous_and_disjoint() {
        let ps = particles(600, 13);
        let b = bounds_of(&ps);
        let part = HilbertPartition::new(&ps, &b, 5).unwrap();
        for w in part.shards().windows(2) {
            assert!(w[0].key_max <= w[1].key_min);
        }
        // every member's key lies inside its shard's range
        for (i, p) in ps.iter().enumerate() {
            let key = hilbert::key(p.position, &b);
            let info = part.shards()[part.shard_of(i)];
            assert!(key >= info.key_min && key <= info.key_max);
        }
    }

    #[test]
    fn duplicate_keys_stay_in_one_shard() {
        // 50 copies of one position followed by 50 spread points: the
        // equal-key run must not straddle a cut
        let mut ps: Vec<Particle> = (0..50)
            .map(|_| Particle::new(Vec3::new(0.1, 0.1, 0.1), 1.0))
            .collect();
        ps.extend(particles(50, 17));
        let b = bounds_of(&ps);
        let part = HilbertPartition::new(&ps, &b, 4).unwrap();
        part.check_invariants().unwrap();
        let first = part.shard_of(0);
        assert!((0..50).all(|i| part.shard_of(i) == first));
    }

    #[test]
    fn all_identical_positions_fall_back_to_positional_cuts() {
        // one giant equal-key run: nudging would empty every later shard,
        // so the partitioner reverts to positional cuts and stays total
        let ps: Vec<Particle> = (0..64)
            .map(|i| Particle::new(Vec3::ZERO, if i % 2 == 0 { 1.0 } else { -1.0 }))
            .collect();
        let b = Aabb::cube(Vec3::ZERO, 1.0);
        let part = HilbertPartition::new(&ps, &b, 4).unwrap();
        assert_eq!(part.shard_count(), 4);
        for info in part.shards() {
            assert_eq!(info.count, 16);
        }
        assert!((part.count_ratio() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn weight_ratio_reflects_charges() {
        let ps = uniform_cube(512, 1.0, ChargeModel::UnitPositive { magnitude: 1.0 }, 19);
        let b = bounds_of(&ps);
        let part = HilbertPartition::new(&ps, &b, 4).unwrap();
        // unit charges: weight ratio equals count ratio
        assert!((part.weight_ratio() - part.count_ratio()).abs() < 1e-12);
        let zero: Vec<Particle> = ps.iter().map(|p| Particle::new(p.position, 0.0)).collect();
        let zpart = HilbertPartition::new(&zero, &b, 2).unwrap();
        assert!(zpart.weight_ratio().is_infinite());
    }
}
