//! The global skeleton tree: one multipole summary per shard.
//!
//! Sharded serving splits one logical dataset into `k` independent
//! octrees, so no single tree can answer "is this whole remote shard far
//! enough to approximate?". The skeleton is the minimal structure that
//! can: a snapshot of every shard's **root** cell (bounds, center of
//! absolute charge, tight radius, weight) together with a copy of its
//! root multipole expansion — the local-essential-tree idea reduced to
//! one level. On top sits a synthetic **global root** aggregating all
//! shard roots through M2M, so a target far from the entire dataset is
//! answered with a single expansion evaluation.
//!
//! Admissibility is the paper's machinery unchanged: a shard root is
//! admitted by the same α-criterion ([`mbt_treecode::mac`]) the in-tree
//! traversal uses, and under tolerance-driven degrees each interaction
//! re-truncates with the Theorem-1 bound at the *actual* distance —
//! replicating the per-interaction refinement of the scalar evaluator, so
//! the cross-shard far field observes the same resolved error budget as
//! the intra-shard one. When the MAC (or, for the global root, the
//! stored-degree sufficiency probe) refuses, the caller opens the shard's
//! full plan instead; accuracy never degrades, only the shortcut is lost.
//!
//! Degree policies differ in when the **global** shortcut is sound:
//!
//! * `Fixed(p)` — always (every cluster is degree `p` by definition, and
//!   M2M to an equal-or-higher degree is exact);
//! * `Tolerance {..}` — only when the Theorem-1 bound says the stored
//!   (max-over-shards) degree already meets `tol` for the *combined*
//!   weight at the actual distance;
//! * `Adaptive {..}` — never: Theorem 3 assigns the combined cluster a
//!   higher degree than any shard stored, so the aggregate falls back to
//!   per-shard interactions (which are individually within budget).

use mbt_geometry::Vec3;
use mbt_multipole::{
    degree_for_tolerance_at, tri_len, Complex, DegreeSelector, ExpansionRef, Workspace,
};
use mbt_tree::{Node, NO_NODE};
use mbt_treecode::mac::{mac, MacDecision};
use mbt_treecode::{EvalStats, Treecode, TreecodeParams};

/// A snapshot of one shard's root: cell geometry + multipole expansion.
#[derive(Debug, Clone)]
pub struct ShardRoot {
    node: Node,
    degree: usize,
    coeffs: Vec<Complex>,
}

impl ShardRoot {
    /// The root cell record (bounds, center, weight, radius).
    #[inline]
    #[must_use]
    pub fn node(&self) -> &Node {
        &self.node
    }

    /// Stored truncation degree of the snapshot expansion.
    #[inline]
    #[must_use]
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// The snapshot expansion as an evaluation-ready view.
    #[inline]
    #[must_use]
    pub fn expansion(&self) -> ExpansionRef<'_> {
        ExpansionRef::new(self.node.center, self.degree, &self.coeffs)
    }
}

/// The one-level global tree over a sharded dataset: per-shard root
/// snapshots plus their M2M aggregate.
///
/// Built once when a sharded dataset's plans come up, then shared
/// read-only across queries; it holds no references into the shard plans,
/// so shards can be evicted and rebuilt independently of the skeleton.
#[derive(Debug, Clone)]
pub struct Skeleton {
    params: TreecodeParams,
    roots: Vec<ShardRoot>,
    global: ShardRoot,
}

impl Skeleton {
    /// Builds the skeleton from the shard treecodes (in shard order).
    ///
    /// All shards must carry the same resolved parameters — they came
    /// from one dataset and one accuracy request, so a mismatch is a
    /// caller bug.
    #[must_use]
    pub fn from_treecodes(shards: &[&Treecode]) -> Skeleton {
        assert!(!shards.is_empty(), "skeleton needs at least one shard");
        let params = *shards[0].params();
        let mut roots = Vec::with_capacity(shards.len());
        for tc in shards {
            assert!(
                *tc.params() == params,
                "shard treecodes disagree on resolved parameters"
            );
            let root_id = tc.tree().root();
            let exp = tc.expansion(root_id);
            let mut coeffs = Vec::with_capacity(exp.coeffs().len());
            coeffs.extend_from_slice(exp.coeffs());
            roots.push(ShardRoot {
                // one root-cell snapshot per shard, taken at build time
                node: tc.tree().node(root_id).clone(), // lint: allow(alloc, cold path: skeleton build runs once per plan generation)
                degree: exp.degree(),
                coeffs,
            });
        }
        let global = Self::aggregate(&roots);
        Skeleton {
            params,
            roots,
            global,
        }
    }

    /// The synthetic global root: union bounds, combined weight, the
    /// abs-charge-weighted center (matching the per-cluster convention),
    /// a radius covering every shard's cluster sphere, and the M2M
    /// aggregate of all shard expansions at the max stored degree.
    fn aggregate(roots: &[ShardRoot]) -> ShardRoot {
        let total_abs: f64 = roots.iter().map(|r| r.node.abs_charge).sum();
        let total_net: f64 = roots.iter().map(|r| r.node.net_charge).sum();
        let center = if total_abs > 0.0 {
            roots
                .iter()
                .map(|r| r.node.center * r.node.abs_charge)
                .sum::<Vec3>()
                / total_abs
        } else {
            roots.iter().map(|r| r.node.center).sum::<Vec3>() / roots.len() as f64
        };
        // every shard's cluster sphere fits inside (center, radius), so
        // the r > radius gate of the MAC stays conservative
        let radius = roots
            .iter()
            .map(|r| center.distance(r.node.center) + r.node.radius)
            .fold(0.0, f64::max);
        let mut bbox = roots[0].node.bbox;
        for r in &roots[1..] {
            bbox = bbox.union(&r.node.bbox);
        }
        let total: u32 = roots.iter().map(|r| r.node.end - r.node.start).sum();
        let degree = roots.iter().map(|r| r.degree).max().unwrap_or(0);
        // M2M at target ≥ source degree is exact (lower-triangular in the
        // source coefficients), so this aggregate is the true degree-p
        // multipole of the whole particle set about `center`
        let mut coeffs = vec![Complex::ZERO; tri_len(degree)]; // lint: allow(alloc, cold path: one global coefficient span per skeleton build)
        for r in roots {
            r.expansion()
                .m2m_accumulate_into(center, degree, &mut coeffs);
        }
        ShardRoot {
            node: Node {
                bbox,
                start: 0,
                end: total,
                children: [NO_NODE; 8],
                parent: NO_NODE,
                level: 0,
                is_leaf: false,
                center,
                abs_charge: total_abs,
                net_charge: total_net,
                radius,
            },
            degree,
            coeffs,
        }
    }

    /// Number of shards summarised.
    #[inline]
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.roots.len()
    }

    /// The resolved parameters the shards were built with.
    #[inline]
    #[must_use]
    pub fn params(&self) -> &TreecodeParams {
        &self.params
    }

    /// Per-shard root snapshots, in shard order.
    #[inline]
    #[must_use]
    pub fn roots(&self) -> &[ShardRoot] {
        &self.roots
    }

    /// The synthetic global root.
    #[inline]
    #[must_use]
    pub fn global(&self) -> &ShardRoot {
        &self.global
    }

    /// The largest stored degree (sizes one [`Workspace`] for any
    /// evaluation against this skeleton).
    #[inline]
    #[must_use]
    pub fn max_degree(&self) -> usize {
        self.global.degree
    }

    /// Approximate owned heap footprint (gauge reporting).
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        let span = |r: &ShardRoot| r.coeffs.len() * std::mem::size_of::<Complex>();
        self.roots.iter().map(span).sum::<usize>()
            + span(&self.global)
            + self.roots.len() * std::mem::size_of::<ShardRoot>()
    }

    /// The degree this interaction is evaluated at — a replica of the
    /// scalar evaluator's per-interaction rule: tolerance-driven runs may
    /// truncate below the stored degree when the Theorem-1 bound at the
    /// actual distance already meets `tol`; every other policy uses the
    /// stored degree.
    fn interaction_degree(&self, root: &ShardRoot, x: Vec3) -> usize {
        match self.params.degree {
            DegreeSelector::Tolerance { tol, p_min, .. } => {
                let node = &root.node;
                let r = x.distance(node.center);
                degree_for_tolerance_at(node.abs_charge, node.radius, r, tol, root.degree)
                    .max(p_min)
                    .min(root.degree)
            }
            DegreeSelector::Fixed(_) | DegreeSelector::Adaptive { .. } => root.degree,
        }
    }

    /// Whether shard `s` may be answered from its skeleton expansion for
    /// target `x` (the same α-criterion the in-tree traversal applies to
    /// the shard's root cell).
    #[inline]
    #[must_use]
    pub fn admissible(&self, s: usize, x: Vec3) -> bool {
        matches!(
            mac(&self.roots[s].node, x, self.params.alpha),
            MacDecision::Accept
        )
    }

    /// Far-field potential of shard `s` at `x`, if the MAC admits the
    /// whole shard. `None` means the caller must open the shard's plan.
    #[must_use]
    pub fn try_far_potential(
        &self,
        s: usize,
        x: Vec3,
        ws: &mut Workspace,
        stats: &mut EvalStats,
    ) -> Option<f64> {
        let root = &self.roots[s];
        if matches!(mac(&root.node, x, self.params.alpha), MacDecision::Open) {
            return None;
        }
        let p = self.interaction_degree(root, x);
        let phi = root.expansion().potential_at_degree_with(x, p, ws);
        stats.record_interaction(p);
        Some(phi)
    }

    /// Far-field potential and field of shard `s` at `x`, if admissible.
    #[must_use]
    pub fn try_far_field(
        &self,
        s: usize,
        x: Vec3,
        ws: &mut Workspace,
        stats: &mut EvalStats,
    ) -> Option<(f64, Vec3)> {
        let root = &self.roots[s];
        if matches!(mac(&root.node, x, self.params.alpha), MacDecision::Open) {
            return None;
        }
        let p = self.interaction_degree(root, x);
        let out = root.expansion().field_at_degree_with(x, p, ws);
        stats.record_interaction(p);
        Some(out)
    }

    /// The degree at which the **global** aggregate may answer `x`, or
    /// `None` when the whole-dataset shortcut is unsound (see the module
    /// docs for the per-policy rule).
    #[must_use]
    pub fn global_degree(&self, x: Vec3) -> Option<usize> {
        let node = &self.global.node;
        if matches!(mac(node, x, self.params.alpha), MacDecision::Open) {
            return None;
        }
        match self.params.degree {
            DegreeSelector::Fixed(_) => Some(self.global.degree),
            DegreeSelector::Tolerance { tol, p_min, .. } => {
                let r = x.distance(node.center);
                // probe with head-room: a result ≤ stored means the stored
                // degree genuinely meets tol (the helper caps at its p_max
                // argument, so probing at stored alone cannot distinguish
                // "meets tol at stored" from "capped")
                let need = degree_for_tolerance_at(
                    node.abs_charge,
                    node.radius,
                    r,
                    tol,
                    self.global.degree + 1,
                );
                if need <= self.global.degree {
                    Some(need.max(p_min).min(self.global.degree))
                } else {
                    None
                }
            }
            DegreeSelector::Adaptive { .. } => None,
        }
    }

    /// Whole-dataset potential at `x` through the global aggregate, when
    /// sound; `None` falls back to per-shard resolution.
    #[must_use]
    pub fn try_global_potential(
        &self,
        x: Vec3,
        ws: &mut Workspace,
        stats: &mut EvalStats,
    ) -> Option<f64> {
        let p = self.global_degree(x)?;
        let phi = self.global.expansion().potential_at_degree_with(x, p, ws);
        stats.record_interaction(p);
        Some(phi)
    }

    /// Whole-dataset potential and field at `x` through the global
    /// aggregate, when sound.
    #[must_use]
    pub fn try_global_field(
        &self,
        x: Vec3,
        ws: &mut Workspace,
        stats: &mut EvalStats,
    ) -> Option<(f64, Vec3)> {
        let p = self.global_degree(x)?;
        let out = self.global.expansion().field_at_degree_with(x, p, ws);
        stats.record_interaction(p);
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::HilbertPartition;
    use mbt_geometry::distribution::{uniform_cube, ChargeModel};
    use mbt_geometry::particle::total_abs_charge;
    use mbt_geometry::{Aabb, Particle};
    use mbt_treecode::TreecodeParams;

    fn build_shards(
        ps: &[Particle],
        k: usize,
        params: TreecodeParams,
    ) -> (Vec<Treecode>, Skeleton) {
        let positions: Vec<Vec3> = ps.iter().map(|p| p.position).collect();
        let bounds = Aabb::cubical_hull(&positions, 1e-9);
        let part = HilbertPartition::new(ps, &bounds, k).unwrap();
        let shards: Vec<Treecode> = part
            .split(ps)
            .into_iter()
            .map(|chunk| Treecode::new(&chunk, params).unwrap())
            .collect();
        let refs: Vec<&Treecode> = shards.iter().collect();
        let skeleton = Skeleton::from_treecodes(&refs);
        (shards, skeleton)
    }

    fn direct_potential(ps: &[Particle], x: Vec3) -> f64 {
        ps.iter().map(|p| p.charge / x.distance(p.position)).sum()
    }

    #[test]
    fn aggregate_conserves_weight_and_covers_shards() {
        let ps = uniform_cube(800, 1.0, ChargeModel::RandomSign { magnitude: 1.0 }, 5);
        let params = TreecodeParams::fixed(6, 0.7);
        let (_, sk) = build_shards(&ps, 4, params);
        assert_eq!(sk.shard_count(), 4);
        let g = sk.global().node();
        assert!((g.abs_charge - total_abs_charge(&ps)).abs() < 1e-9);
        assert!((g.net_charge - ps.iter().map(|p| p.charge).sum::<f64>()).abs() < 1e-9);
        assert_eq!(g.len(), ps.len());
        for r in sk.roots() {
            // each shard's cluster sphere sits inside the global one
            let reach = g.center.distance(r.node().center) + r.node().radius;
            assert!(reach <= g.radius + 1e-12);
            assert!(g.bbox.contains(r.node().bbox.min));
            assert!(g.bbox.contains(r.node().bbox.max));
        }
        assert_eq!(sk.max_degree(), 6);
        assert!(sk.heap_bytes() > 0);
    }

    #[test]
    fn global_expansion_matches_distant_direct_sum() {
        let ps = uniform_cube(600, 1.0, ChargeModel::UnitPositive { magnitude: 1.0 }, 9);
        let params = TreecodeParams::fixed(10, 0.5);
        let (_, sk) = build_shards(&ps, 4, params);
        let mut ws = Workspace::new();
        let mut stats = EvalStats::default();
        let x = Vec3::new(40.0, -35.0, 25.0);
        let phi = sk.try_global_potential(x, &mut ws, &mut stats).unwrap();
        let exact = direct_potential(&ps, x);
        assert!(
            (phi - exact).abs() / exact.abs() < 1e-10,
            "far global eval should be near-exact: {phi} vs {exact}"
        );
        assert_eq!(stats.pc_interactions, 1);
        let (phi2, grad) = sk.try_global_field(x, &mut ws, &mut stats).unwrap();
        assert!((phi2 - phi).abs() < 1e-13);
        assert!(grad.norm() > 0.0);
    }

    #[test]
    fn per_shard_far_eval_is_mac_gated_and_accurate() {
        let ps = uniform_cube(600, 1.0, ChargeModel::RandomSign { magnitude: 1.0 }, 13);
        let params = TreecodeParams::fixed(8, 0.7);
        let (shards, sk) = build_shards(&ps, 4, params);
        let mut ws = Workspace::new();
        let mut stats = EvalStats::default();
        // inside the cloud: at least the owning shard must refuse
        let inside = ps[0].position;
        assert!((0..4).any(|s| sk
            .try_far_potential(s, inside, &mut ws, &mut stats)
            .is_none()));
        // far outside: every shard is admissible and sums match direct
        let far = Vec3::new(30.0, 30.0, -28.0);
        let mut total = 0.0;
        for s in 0..4 {
            assert!(sk.admissible(s, far));
            total += sk.try_far_potential(s, far, &mut ws, &mut stats).unwrap();
        }
        let exact: f64 = shards
            .iter()
            .map(|tc| direct_potential(tc.particles(), far))
            .sum();
        assert!((total - exact).abs() / exact.abs() < 1e-9);
    }

    #[test]
    fn tolerance_policy_gates_the_global_shortcut() {
        let ps = uniform_cube(500, 1.0, ChargeModel::UnitPositive { magnitude: 1.0 }, 21);
        let params = TreecodeParams::tolerance(1e-6, 0.7);
        let (_, sk) = build_shards(&ps, 4, params);
        // near the cloud (but MAC-accepted only far away anyway): just
        // outside admissibility the shortcut must refuse via the MAC;
        // well beyond, the combined-weight probe must accept
        let far = Vec3::new(200.0, 0.0, 0.0);
        let p = sk
            .global_degree(far)
            .expect("far target must be admissible");
        assert!(p <= sk.max_degree());
        // close targets are rejected (MAC or the sufficiency probe)
        assert!(sk.global_degree(ps[0].position).is_none());
    }

    #[test]
    fn adaptive_policy_never_takes_the_global_shortcut() {
        let ps = uniform_cube(500, 1.0, ChargeModel::UnitPositive { magnitude: 1.0 }, 23);
        let params = TreecodeParams::adaptive(2, 0.7);
        let (_, sk) = build_shards(&ps, 4, params);
        let far = Vec3::new(500.0, 0.0, 0.0);
        assert!(sk.global_degree(far).is_none());
        // but per-shard far evaluation still works
        let mut ws = Workspace::new();
        let mut stats = EvalStats::default();
        assert!(sk.try_far_potential(0, far, &mut ws, &mut stats).is_some());
    }
}
