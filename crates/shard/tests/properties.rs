//! Property-based tests of the Hilbert partitioner: balance bounds,
//! contiguity, order preservation, and the `k = 1` identity the engine's
//! bit-exactness guarantee rests on.

use mbt_geometry::{Aabb, Particle, Vec3};
use mbt_shard::{HilbertPartition, ShardError};
use proptest::prelude::*;

fn arb_particles(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Particle>> {
    prop::collection::vec((-10.0f64..10.0, -10.0f64..10.0, -10.0f64..10.0, 0u32..2), n).prop_map(
        |raw| {
            raw.into_iter()
                .map(|(x, y, z, sign)| {
                    Particle::new(Vec3::new(x, y, z), if sign == 0 { 1.0 } else { -1.0 })
                })
                .collect()
        },
    )
}

fn hull(ps: &[Particle]) -> Aabb {
    let positions: Vec<Vec3> = ps.iter().map(|p| p.position).collect();
    Aabb::cubical_hull(&positions, 1e-9)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Structural invariants hold for every valid `(particles, k)`.
    #[test]
    fn partition_invariants(ps in arb_particles(1..200), k in 1usize..12) {
        prop_assume!(k <= ps.len());
        let part = HilbertPartition::new(&ps, &hull(&ps), k).unwrap();
        prop_assert!(part.check_invariants().is_ok());
        prop_assert_eq!(part.shard_count(), k);
        let total: usize = part.shards().iter().map(|s| s.count).sum();
        prop_assert_eq!(total, ps.len());
    }

    /// With unit-magnitude charges the weight ratio equals the count
    /// ratio, and absent equal-key collisions the positional cuts bound
    /// both by `⌈n/k⌉ / ⌊n/k⌋`.
    #[test]
    fn weight_balance_is_pinned(ps in arb_particles(16..200), k in 2usize..9) {
        prop_assume!(k <= ps.len());
        let bounds = hull(&ps);
        let part = HilbertPartition::new(&ps, &bounds, k).unwrap();
        prop_assert!((part.weight_ratio() - part.count_ratio()).abs() <= 1e-12);
        let mut keys: Vec<u64> = ps
            .iter()
            .map(|p| mbt_geometry::hilbert::key(p.position, &bounds))
            .collect();
        keys.sort_unstable();
        keys.dedup();
        if keys.len() == ps.len() {
            let n = ps.len();
            let bound = n.div_ceil(k) as f64 / (n / k) as f64;
            prop_assert!(
                part.weight_ratio() <= bound + 1e-12,
                "weight ratio {} exceeds positional bound {bound}",
                part.weight_ratio()
            );
        }
    }

    /// `split` covers the input exactly and preserves each particle's
    /// original relative order inside its shard; `k = 1` is the identity.
    #[test]
    fn split_preserves_order(ps in arb_particles(1..150), k in 1usize..8) {
        prop_assume!(k <= ps.len());
        let part = HilbertPartition::new(&ps, &hull(&ps), k).unwrap();
        let parts = part.split(&ps);
        prop_assert_eq!(parts.len(), k);
        // each shard is the subsequence of the input it owns
        let mut cursors = vec![0usize; k];
        for (i, p) in ps.iter().enumerate() {
            let s = part.shard_of(i);
            prop_assert_eq!(parts[s][cursors[s]], *p);
            cursors[s] += 1;
        }
        for (s, c) in cursors.iter().enumerate() {
            prop_assert_eq!(*c, parts[s].len());
        }
        if k == 1 {
            prop_assert_eq!(&parts[0], &ps);
        }
    }

    /// Impossible counts are rejected, never mis-partitioned.
    #[test]
    fn invalid_counts_are_rejected(ps in arb_particles(1..50)) {
        let bounds = hull(&ps);
        for bad in [0, ps.len() + 1, ps.len() * 2 + 5] {
            prop_assert_eq!(
                HilbertPartition::new(&ps, &bounds, bad).unwrap_err(),
                ShardError::InvalidCount { requested: bad, particles: ps.len() }
            );
        }
    }
}
