//! N-body dynamics substrate.
//!
//! The treecode literature the paper builds on (Barnes–Hut and its
//! parallelisations) exists to drive large gravitational and molecular
//! simulations. This crate provides that driver: a kick–drift–kick
//! leapfrog integrator whose accelerations come from any [`ForceModel`]
//! (treecode — fixed or adaptive degree — or exact direct summation), plus
//! the standard diagnostics (kinetic/potential energy, virial ratio,
//! center-of-mass drift, Lagrangian radii).
//!
//! Sign conventions: particles carry *gravitational masses* in
//! `Particle::charge`; the potential is `Φᵢ = Σ m_j/√(r²+ε²)` and the
//! acceleration `aᵢ = +∇Φᵢ` (attractive).
//!
//! ```
//! use mbt_geometry::distribution::plummer;
//! use mbt_sim::{ForceModel, Simulation};
//! use mbt_treecode::TreecodeParams;
//!
//! let bodies = plummer(500, 1.0, 1.0, 42);
//! let mut sim = Simulation::new(
//!     bodies,
//!     ForceModel::Treecode(TreecodeParams::adaptive(3, 0.6).with_softening(0.05)),
//! );
//! sim.set_virial_velocities(7);
//! let e0 = sim.total_energy();
//! sim.step(0.01);
//! assert!((sim.total_energy() - e0).abs() < 1e-2 * e0.abs());
//! ```

#![forbid(unsafe_code)]

use mbt_geometry::{Particle, Vec3};
use mbt_treecode::direct::direct_potentials_softened;
use mbt_treecode::{Treecode, TreecodeParams};
use rayon::prelude::*;

/// How accelerations are computed.
#[derive(Debug, Clone, Copy)]
pub enum ForceModel {
    /// Treecode forces with the given parameters (set the softening via
    /// `TreecodeParams::with_softening`).
    Treecode(TreecodeParams),
    /// Exact `O(n²)` softened summation (reference / small systems).
    Direct {
        /// Plummer softening length.
        softening: f64,
    },
}

impl ForceModel {
    fn softening(&self) -> f64 {
        match self {
            ForceModel::Treecode(p) => p.softening,
            ForceModel::Direct { softening } => *softening,
        }
    }
}

/// A running N-body system.
pub struct Simulation {
    bodies: Vec<Particle>,
    velocities: Vec<Vec3>,
    accelerations: Vec<Vec3>,
    force: ForceModel,
    time: f64,
    steps: usize,
}

impl Simulation {
    /// Creates a simulation at rest.
    #[must_use]
    pub fn new(bodies: Vec<Particle>, force: ForceModel) -> Simulation {
        assert!(!bodies.is_empty(), "cannot simulate zero bodies");
        let n = bodies.len();
        let mut sim = Simulation {
            bodies,
            velocities: vec![Vec3::ZERO; n],
            accelerations: vec![Vec3::ZERO; n],
            force,
            time: 0.0,
            steps: 0,
        };
        sim.accelerations = sim.compute_accelerations();
        sim
    }

    /// Assigns isotropic Gaussian velocities at the virial temperature of
    /// a Plummer-like cluster (`σ² ≈ |W|/(3M)` with `W ≈ −(3π/32)M²/a`,
    /// `a` estimated from the half-mass radius).
    pub fn set_virial_velocities(&mut self, seed: u64) {
        let m_total: f64 = self.bodies.iter().map(|b| b.charge).sum();
        let a = (self.lagrangian_radius(0.5) / 1.3).max(1e-12);
        let w = 3.0 * std::f64::consts::PI / 32.0 * m_total * m_total / a;
        let sigma = (w / (3.0 * m_total)).sqrt();
        // deterministic xorshift-based Gaussians (keeps this crate free of
        // a rand dependency in non-dev code)
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut uniform = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 11) as f64 / (1u64 << 53) as f64).clamp(1e-16, 1.0 - 1e-16)
        };
        let mut gauss = move || {
            let u1 = uniform();
            let u2 = uniform();
            (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
        };
        for v in &mut self.velocities {
            *v = Vec3::new(gauss(), gauss(), gauss()) * sigma;
        }
        self.remove_net_momentum();
    }

    /// Subtracts the center-of-mass velocity.
    pub fn remove_net_momentum(&mut self) {
        let m_total: f64 = self.bodies.iter().map(|b| b.charge).sum();
        // lint: allow(float_cmp, exact-zero guard before dividing by total mass)
        if m_total == 0.0 {
            return;
        }
        let p: Vec3 = self
            .bodies
            .iter()
            .zip(&self.velocities)
            .map(|(b, v)| *v * b.charge)
            .sum();
        let v_com = p / m_total;
        for v in &mut self.velocities {
            *v -= v_com;
        }
    }

    fn compute_accelerations(&self) -> Vec<Vec3> {
        match self.force {
            ForceModel::Treecode(params) => {
                // lint: allow(panic, bodies and params are validated by the System constructor)
                let tc = Treecode::new(&self.bodies, params).expect("valid system");
                tc.fields().values.into_iter().map(|(_, g)| g).collect()
            }
            ForceModel::Direct { softening } => {
                let eps2 = softening * softening;
                self.bodies
                    .par_iter()
                    .enumerate()
                    .map(|(i, bi)| {
                        let mut acc = Vec3::ZERO;
                        for (j, bj) in self.bodies.iter().enumerate() {
                            if i != j {
                                let d = bi.position - bj.position;
                                let r2 = d.norm_sq() + eps2;
                                acc += d * (-bj.charge / (r2 * r2.sqrt()));
                            }
                        }
                        acc
                    })
                    .collect()
            }
        }
    }

    /// Advances one kick–drift–kick leapfrog step of size `dt`.
    pub fn step(&mut self, dt: f64) {
        for (v, a) in self.velocities.iter_mut().zip(&self.accelerations) {
            *v += *a * (0.5 * dt);
        }
        for (b, v) in self.bodies.iter_mut().zip(&self.velocities) {
            b.position += *v * dt;
        }
        self.accelerations = self.compute_accelerations();
        for (v, a) in self.velocities.iter_mut().zip(&self.accelerations) {
            *v += *a * (0.5 * dt);
        }
        self.time += dt;
        self.steps += 1;
    }

    /// Advances `n` steps.
    pub fn run(&mut self, dt: f64, n: usize) {
        for _ in 0..n {
            self.step(dt);
        }
    }

    /// The bodies (positions/masses).
    #[must_use]
    pub fn bodies(&self) -> &[Particle] {
        &self.bodies
    }

    /// The velocities.
    #[must_use]
    pub fn velocities(&self) -> &[Vec3] {
        &self.velocities
    }

    /// Elapsed simulated time.
    #[must_use]
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Number of completed steps.
    #[must_use]
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Kinetic energy `Σ ½ m v²`.
    #[must_use]
    pub fn kinetic_energy(&self) -> f64 {
        0.5 * self
            .bodies
            .iter()
            .zip(&self.velocities)
            .map(|(b, v)| b.charge * v.norm_sq())
            .sum::<f64>()
    }

    /// Potential energy `−½ Σ mᵢ Φᵢ` with the model's softening (exact
    /// summation; `O(n²)` — a diagnostic, not a per-step cost).
    #[must_use]
    pub fn potential_energy(&self) -> f64 {
        let phi = direct_potentials_softened(&self.bodies, self.force.softening());
        -0.5 * self
            .bodies
            .iter()
            .zip(&phi)
            .map(|(b, &f)| b.charge * f)
            .sum::<f64>()
    }

    /// Total energy.
    #[must_use]
    pub fn total_energy(&self) -> f64 {
        self.kinetic_energy() + self.potential_energy()
    }

    /// Virial ratio `2K/|W|` (≈ 1 in equilibrium).
    #[must_use]
    pub fn virial_ratio(&self) -> f64 {
        2.0 * self.kinetic_energy() / self.potential_energy().abs().max(1e-300)
    }

    /// Center of mass.
    #[must_use]
    pub fn center_of_mass(&self) -> Vec3 {
        let m: f64 = self.bodies.iter().map(|b| b.charge).sum();
        self.bodies
            .iter()
            .map(|b| b.position * b.charge)
            .sum::<Vec3>()
            / m
    }

    /// Radius (about the center of mass) containing the given mass
    /// fraction — `lagrangian_radius(0.5)` is the half-mass radius.
    #[must_use]
    pub fn lagrangian_radius(&self, fraction: f64) -> f64 {
        assert!((0.0..=1.0).contains(&fraction));
        let com = self.center_of_mass();
        let m_total: f64 = self.bodies.iter().map(|b| b.charge).sum();
        let mut by_r: Vec<(f64, f64)> = self
            .bodies
            .iter()
            .map(|b| (b.position.distance(com), b.charge))
            .collect();
        by_r.sort_by(|a, b| a.0.total_cmp(&b.0));
        let target = fraction * m_total;
        let mut acc = 0.0;
        for (r, m) in by_r {
            acc += m;
            if acc >= target {
                return r;
            }
        }
        f64::INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbt_geometry::distribution::plummer;

    #[test]
    fn two_body_circular_orbit() {
        // equal masses m = 0.5 at ±0.5 x̂: circular speed v² = G·m_other·... for
        // the two-body problem each orbits the COM at r = 0.5 with
        // v² = m_other/(separation²) · r = 0.5/1 · 0.5 = 0.25
        let bodies = vec![
            Particle::new(Vec3::new(-0.5, 0.0, 0.0), 0.5),
            Particle::new(Vec3::new(0.5, 0.0, 0.0), 0.5),
        ];
        let mut sim = Simulation::new(bodies, ForceModel::Direct { softening: 0.0 });
        let v = 0.5; // v² = a·r = (m_other/sep²)·r = 0.5·0.5 = 0.25
        sim.velocities[0] = Vec3::new(0.0, -v, 0.0);
        sim.velocities[1] = Vec3::new(0.0, v, 0.0);
        let e0 = sim.total_energy();
        // one full period: T = 2πr/v = 2π·0.5/0.5 = 2π
        let steps = 2000;
        sim.run(std::f64::consts::TAU / steps as f64, steps);
        // returned to start (2nd-order integrator: generous tolerance)
        assert!(
            sim.bodies[0].position.distance(Vec3::new(-0.5, 0.0, 0.0)) < 0.02,
            "orbit did not close: {:?}",
            sim.bodies[0].position
        );
        let drift = (sim.total_energy() - e0).abs() / e0.abs();
        assert!(drift < 1e-4, "energy drift {drift}");
    }

    #[test]
    fn leapfrog_is_time_reversible() {
        let bodies = plummer(50, 1.0, 1.0, 3);
        let mut sim = Simulation::new(bodies, ForceModel::Direct { softening: 0.05 });
        sim.set_virial_velocities(5);
        let x0: Vec<Vec3> = sim.bodies().iter().map(|b| b.position).collect();
        sim.run(0.01, 20);
        // reverse velocities and integrate back
        for v in &mut sim.velocities {
            *v = -*v;
        }
        sim.run(0.01, 20);
        for (b, &x) in sim.bodies().iter().zip(&x0) {
            assert!(
                b.position.distance(x) < 1e-9,
                "leapfrog not reversible: {:?} vs {x:?}",
                b.position
            );
        }
    }

    #[test]
    fn treecode_and_direct_forces_agree_dynamically() {
        let bodies = plummer(300, 1.0, 1.0, 11);
        let params = TreecodeParams::fixed(8, 0.4).with_softening(0.05);
        let mut tree_sim = Simulation::new(bodies.clone(), ForceModel::Treecode(params));
        let mut direct_sim = Simulation::new(bodies, ForceModel::Direct { softening: 0.05 });
        tree_sim.set_virial_velocities(7);
        direct_sim.set_virial_velocities(7);
        tree_sim.run(0.01, 10);
        direct_sim.run(0.01, 10);
        for (a, b) in tree_sim.bodies().iter().zip(direct_sim.bodies()) {
            assert!(
                a.position.distance(b.position) < 1e-3,
                "trajectories diverged: {:?} vs {:?}",
                a.position,
                b.position
            );
        }
    }

    #[test]
    fn virial_velocities_near_equilibrium() {
        let bodies = plummer(2000, 1.0, 1.0, 13);
        let mut sim = Simulation::new(bodies, ForceModel::Direct { softening: 0.02 });
        sim.set_virial_velocities(17);
        let q = sim.virial_ratio();
        assert!(
            (0.5..=1.6).contains(&q),
            "virial ratio {q} far from equilibrium"
        );
        // zero net momentum
        let p: Vec3 = sim
            .bodies()
            .iter()
            .zip(sim.velocities())
            .map(|(b, v)| *v * b.charge)
            .sum();
        assert!(p.norm() < 1e-10);
    }

    #[test]
    fn lagrangian_radii_ordered() {
        let bodies = plummer(1000, 1.0, 1.0, 19);
        let sim = Simulation::new(bodies, ForceModel::Direct { softening: 0.02 });
        let r25 = sim.lagrangian_radius(0.25);
        let r50 = sim.lagrangian_radius(0.5);
        let r90 = sim.lagrangian_radius(0.9);
        assert!(r25 < r50 && r50 < r90);
        assert!((r50 - 1.3).abs() < 0.3, "Plummer half-mass radius {r50}");
    }

    #[test]
    #[should_panic(expected = "cannot simulate zero bodies")]
    fn empty_system_panics() {
        let _ = Simulation::new(vec![], ForceModel::Direct { softening: 0.0 });
    }
}
