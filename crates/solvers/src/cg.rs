//! Conjugate gradients for symmetric positive-definite operators.
//!
//! The collocation single-layer operator is symmetric positive definite
//! (it discretises a coercive first-kind integral operator), so CG is a
//! natural alternative to the paper's GMRES(10); it needs no restart
//! machinery and one matvec per iteration.

use crate::dense::{axpy, dot, norm2};
use crate::operator::{JacobiPreconditioner, LinearOperator};

/// CG options.
#[derive(Debug, Clone)]
pub struct CgOptions {
    /// Relative residual tolerance `‖r‖/‖b‖`.
    pub tol: f64,
    /// Maximum iterations (matvec applications).
    pub max_iters: usize,
    /// Optional Jacobi preconditioner.
    pub preconditioner: Option<JacobiPreconditioner>,
}

impl Default for CgOptions {
    fn default() -> Self {
        CgOptions {
            tol: 1e-8,
            max_iters: 500,
            preconditioner: None,
        }
    }
}

/// Why CG stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CgOutcome {
    /// Relative residual reached the tolerance.
    Converged,
    /// Iteration budget exhausted.
    MaxIterations,
    /// `pᵀAp ≤ 0` — the operator is not positive definite on the Krylov
    /// space (or roundoff destroyed it).
    IndefiniteOperator,
}

/// Solver output.
#[derive(Debug, Clone)]
pub struct CgResult {
    /// Approximate solution.
    pub x: Vec<f64>,
    /// Final relative residual (recomputed from `b − Ax`).
    pub relative_residual: f64,
    /// Matvec applications.
    pub iterations: usize,
    /// Relative residual after every iteration.
    pub history: Vec<f64>,
    /// Stop reason.
    pub outcome: CgOutcome,
}

/// Solves `A x = b` for symmetric positive-definite `A`.
pub fn cg(a: &dyn LinearOperator, b: &[f64], opts: &CgOptions) -> CgResult {
    let n = a.dim();
    assert_eq!(b.len(), n, "right-hand side dimension mismatch");
    let b_norm = norm2(b);
    // lint: allow(float_cmp, exact-zero RHS short-circuits to x = 0)
    if b_norm == 0.0 {
        return CgResult {
            x: vec![0.0; n],
            relative_residual: 0.0,
            iterations: 0,
            history: vec![],
            outcome: CgOutcome::Converged,
        };
    }

    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut z = r.clone();
    if let Some(p) = &opts.preconditioner {
        p.apply_in_place(&mut z);
    }
    let mut p = z.clone();
    let mut rz = dot(&r, &z);
    let mut history = Vec::new();
    let mut outcome = CgOutcome::MaxIterations;
    let mut iterations = 0usize;

    for _ in 0..opts.max_iters {
        iterations += 1;
        let mut ap = vec![0.0; n];
        a.apply(&p, &mut ap);
        let pap = dot(&p, &ap);
        if pap <= 0.0 {
            outcome = CgOutcome::IndefiniteOperator;
            break;
        }
        let alpha = rz / pap;
        axpy(alpha, &p, &mut x);
        axpy(-alpha, &ap, &mut r);
        let rel = norm2(&r) / b_norm;
        history.push(rel);
        if rel <= opts.tol {
            outcome = CgOutcome::Converged;
            break;
        }
        z.copy_from_slice(&r);
        if let Some(pc) = &opts.preconditioner {
            pc.apply_in_place(&mut z);
        }
        let rz_new = dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        for (pi, &zi) in p.iter_mut().zip(&z) {
            *pi = zi + beta * *pi;
        }
    }

    let mut res = vec![0.0; n];
    a.apply(&x, &mut res);
    for (ri, &bi) in res.iter_mut().zip(b) {
        *ri = bi - *ri;
    }
    CgResult {
        x,
        relative_residual: norm2(&res) / b_norm,
        iterations,
        history,
        outcome,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseMatrix;

    fn spd(n: usize) -> (DenseMatrix, Vec<f64>) {
        let a = DenseMatrix::from_fn(n, n, |i, j| {
            if i == j {
                n as f64
            } else {
                1.0 / (1.0 + (i as f64 - j as f64).powi(2))
            }
        });
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.21).sin() + 1.5).collect();
        (a, b)
    }

    #[test]
    fn solves_spd_system() {
        let (a, b) = spd(50);
        let r = cg(
            &a,
            &b,
            &CgOptions {
                tol: 1e-12,
                ..Default::default()
            },
        );
        assert_eq!(r.outcome, CgOutcome::Converged);
        assert!(r.relative_residual < 1e-11);
    }

    #[test]
    fn identity_converges_in_one_iteration() {
        let a = DenseMatrix::identity(10);
        let b = vec![2.0; 10];
        let r = cg(&a, &b, &CgOptions::default());
        assert_eq!(r.outcome, CgOutcome::Converged);
        assert_eq!(r.iterations, 1);
        for xi in r.x {
            assert!((xi - 2.0).abs() < 1e-14);
        }
    }

    #[test]
    fn residual_history_reaches_tolerance() {
        let (a, b) = spd(40);
        let r = cg(
            &a,
            &b,
            &CgOptions {
                tol: 1e-9,
                ..Default::default()
            },
        );
        assert!(r.history.last().copied().unwrap_or(1.0) <= 1e-9);
    }

    #[test]
    fn zero_rhs_trivial() {
        let (a, _) = spd(8);
        let r = cg(&a, &[0.0; 8], &CgOptions::default());
        assert_eq!(r.outcome, CgOutcome::Converged);
        assert!(r.x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn indefinite_detected() {
        let mut m = DenseMatrix::zeros(2, 2);
        m[(0, 0)] = 1.0;
        m[(1, 1)] = -1.0;
        let r = cg(&m, &[0.0, 1.0], &CgOptions::default());
        assert_eq!(r.outcome, CgOutcome::IndefiniteOperator);
    }

    #[test]
    fn jacobi_preconditioning_helps_badly_scaled_systems() {
        let n = 60;
        let a = DenseMatrix::from_fn(n, n, |i, j| {
            if i == j {
                10.0f64.powi((i % 4) as i32)
            } else {
                0.001
            }
        });
        let b: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64).sin()).collect();
        let plain = cg(
            &a,
            &b,
            &CgOptions {
                tol: 1e-10,
                max_iters: 400,
                preconditioner: None,
            },
        );
        let pre = cg(
            &a,
            &b,
            &CgOptions {
                tol: 1e-10,
                max_iters: 400,
                preconditioner: Some(JacobiPreconditioner::new(&a.diagonal())),
            },
        );
        assert_eq!(pre.outcome, CgOutcome::Converged);
        assert!(pre.iterations <= plain.iterations);
    }

    #[test]
    fn matches_gmres_solution() {
        let (a, b) = spd(30);
        let xc = cg(
            &a,
            &b,
            &CgOptions {
                tol: 1e-12,
                ..Default::default()
            },
        )
        .x;
        let xg = crate::gmres::gmres(
            &a,
            &b,
            &crate::gmres::GmresOptions {
                restart: 30,
                tol: 1e-12,
                ..Default::default()
            },
        )
        .x;
        for (c, g) in xc.iter().zip(&xg) {
            assert!((c - g).abs() < 1e-9 * (1.0 + g.abs()));
        }
    }
}
