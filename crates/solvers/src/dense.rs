//! Row-major dense matrices with a parallel matvec.
//!
//! Used as the exact reference operator for the BEM experiments (the
//! paper's "Original"/"Reference" rows apply the same dense system that
//! the treecode approximates).

use rayon::prelude::*;

use crate::operator::LinearOperator;

/// A dense row-major `rows × cols` matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// A zero matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds from a row-major element function.
    pub fn from_fn(rows: usize, cols: usize, f: impl Fn(usize, usize) -> f64 + Sync) -> Self {
        let data: Vec<f64> = (0..rows * cols)
            .into_par_iter()
            .map(|k| f(k / cols, k % cols))
            .collect();
        DenseMatrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// A row as a slice.
    #[inline]
    #[must_use]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The main diagonal.
    #[must_use]
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.rows.min(self.cols))
            .map(|i| self[(i, i)])
            .collect()
    }

    /// Matrix–vector product `y = A x` (parallel over rows).
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols);
        assert_eq!(y.len(), self.rows);
        y.par_iter_mut().enumerate().for_each(|(i, yi)| {
            let row = self.row(i);
            *yi = row.iter().zip(x).map(|(a, b)| a * b).sum();
        });
    }
}

impl std::ops::Index<(usize, usize)> for DenseMatrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for DenseMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

impl LinearOperator for DenseMatrix {
    fn dim(&self) -> usize {
        debug_assert_eq!(
            self.rows, self.cols,
            "LinearOperator requires a square matrix"
        );
        self.rows
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.matvec(x, y);
    }
}

/// Euclidean norm.
#[must_use]
pub fn norm2(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Dot product.
#[must_use]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y += alpha * x`.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matvec() {
        let m = DenseMatrix::identity(4);
        let x = [1.0, -2.0, 3.0, 0.5];
        let mut y = vec![0.0; 4];
        m.matvec(&x, &mut y);
        assert_eq!(y, x.to_vec());
    }

    #[test]
    fn from_fn_and_indexing() {
        let m = DenseMatrix::from_fn(2, 3, |i, j| (i * 10 + j) as f64);
        assert_eq!(m[(0, 0)], 0.0);
        assert_eq!(m[(1, 2)], 12.0);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
    }

    #[test]
    fn known_matvec() {
        let mut m = DenseMatrix::zeros(2, 2);
        m[(0, 0)] = 1.0;
        m[(0, 1)] = 2.0;
        m[(1, 0)] = 3.0;
        m[(1, 1)] = 4.0;
        let y = m.apply_vec(&[1.0, 1.0]);
        assert_eq!(y, vec![3.0, 7.0]);
        assert_eq!(m.diagonal(), vec![1.0, 4.0]);
    }

    #[test]
    fn blas1_helpers() {
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, vec![3.0, -1.0]);
    }
}
