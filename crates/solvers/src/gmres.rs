//! Restarted GMRES(m).
//!
//! Arnoldi with modified Gram–Schmidt, Givens-rotation QR of the Hessenberg
//! matrix, and an optional left Jacobi preconditioner. The paper runs
//! "GMRES with a restart of 10" on the BEM systems and observes good
//! convergence; the solver reports the full residual history so the
//! harnesses can show the same.

use crate::dense::{axpy, norm2};
use crate::operator::{JacobiPreconditioner, LinearOperator};

/// GMRES options.
#[derive(Debug, Clone)]
pub struct GmresOptions {
    /// Restart length `m` (the paper uses 10).
    pub restart: usize,
    /// Relative residual tolerance `‖r‖/‖b‖`.
    pub tol: f64,
    /// Maximum total iterations (matvec applications).
    pub max_iters: usize,
    /// Optional left preconditioner.
    pub preconditioner: Option<JacobiPreconditioner>,
}

impl Default for GmresOptions {
    fn default() -> Self {
        GmresOptions {
            restart: 10,
            tol: 1e-8,
            max_iters: 500,
            preconditioner: None,
        }
    }
}

/// Why GMRES stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GmresOutcome {
    /// Relative residual reached the tolerance.
    Converged,
    /// Iteration budget exhausted.
    MaxIterations,
    /// The Krylov space degenerated (happy breakdown at the exact
    /// solution, or a zero right-hand side).
    Breakdown,
}

/// Solver output.
#[derive(Debug, Clone)]
pub struct GmresResult {
    /// Approximate solution.
    pub x: Vec<f64>,
    /// Relative residual `‖b − Ax‖/‖b‖` after the final iteration
    /// (recomputed from the true residual, not the Givens estimate).
    pub relative_residual: f64,
    /// Total matvec applications.
    pub iterations: usize,
    /// Krylov-space rebuilds beyond the first cycle.
    pub restarts: usize,
    /// Relative-residual estimate after every iteration.
    pub history: Vec<f64>,
    /// Stop reason.
    pub outcome: GmresOutcome,
}

/// Solves `A x = b` by restarted GMRES.
pub fn gmres(a: &dyn LinearOperator, b: &[f64], opts: &GmresOptions) -> GmresResult {
    let n = a.dim();
    assert_eq!(b.len(), n, "right-hand side dimension mismatch");
    let m = opts.restart.max(1);

    let precond = |v: &mut Vec<f64>| {
        if let Some(p) = &opts.preconditioner {
            p.apply_in_place(v);
        }
    };

    let mut pb = b.to_vec();
    precond(&mut pb);
    let b_norm = norm2(&pb);
    // lint: allow(float_cmp, exact-zero RHS short-circuits to x = 0)
    if b_norm == 0.0 {
        return GmresResult {
            x: vec![0.0; n],
            relative_residual: 0.0,
            iterations: 0,
            restarts: 0,
            history: vec![],
            outcome: GmresOutcome::Breakdown,
        };
    }

    let mut x = vec![0.0; n];
    let mut history = Vec::new();
    let mut total_iters = 0usize;
    let mut cycles = 0usize;
    let mut outcome = GmresOutcome::MaxIterations;

    'restart: while total_iters < opts.max_iters {
        cycles += 1;
        // r = M⁻¹(b − A x)
        let mut r = vec![0.0; n];
        a.apply(&x, &mut r);
        for (ri, &bi) in r.iter_mut().zip(b) {
            *ri = bi - *ri;
        }
        precond(&mut r);
        let beta = norm2(&r);
        if beta / b_norm <= opts.tol {
            outcome = GmresOutcome::Converged;
            break;
        }

        // Arnoldi basis (m+1 vectors) and Hessenberg columns
        let mut v: Vec<Vec<f64>> = Vec::with_capacity(m + 1);
        v.push(r.iter().map(|ri| ri / beta).collect());
        let mut h = vec![vec![0.0f64; m]; m + 1]; // h[i][j]
        let mut cs = vec![0.0f64; m];
        let mut sn = vec![0.0f64; m];
        let mut g = vec![0.0f64; m + 1];
        g[0] = beta;

        let mut k_done = 0usize;
        for j in 0..m {
            if total_iters >= opts.max_iters {
                break;
            }
            total_iters += 1;
            // w = M⁻¹ A v_j
            let mut w = vec![0.0; n];
            a.apply(&v[j], &mut w);
            precond(&mut w);
            // modified Gram–Schmidt
            for (i, vi) in v.iter().enumerate() {
                let hij = crate::dense::dot(&w, vi);
                h[i][j] = hij;
                axpy(-hij, vi, &mut w);
            }
            let wnorm = norm2(&w);
            h[j + 1][j] = wnorm;

            // apply existing rotations to the new column
            for i in 0..j {
                let t = cs[i] * h[i][j] + sn[i] * h[i + 1][j];
                h[i + 1][j] = -sn[i] * h[i][j] + cs[i] * h[i + 1][j];
                h[i][j] = t;
            }
            // new rotation to zero h[j+1][j]
            let denom = (h[j][j] * h[j][j] + h[j + 1][j] * h[j + 1][j]).sqrt();
            // lint: allow(float_cmp, exact-zero guard: Givens rotation undefined)
            if denom == 0.0 {
                k_done = j; // column vanished entirely
                outcome = GmresOutcome::Breakdown;
                break;
            }
            cs[j] = h[j][j] / denom;
            sn[j] = h[j + 1][j] / denom;
            h[j][j] = denom;
            h[j + 1][j] = 0.0;
            g[j + 1] = -sn[j] * g[j];
            g[j] *= cs[j];
            k_done = j + 1;

            let rel = g[j + 1].abs() / b_norm;
            history.push(rel);

            if rel <= opts.tol {
                outcome = GmresOutcome::Converged;
                break;
            }
            // lint: allow(float_cmp, exact-zero guard: happy breakdown)
            if wnorm == 0.0 {
                // happy breakdown: exact solution in the current space
                outcome = GmresOutcome::Breakdown;
                break;
            }
            v.push(w.iter().map(|wi| wi / wnorm).collect());
        }

        // back-substitute y from the triangular system and update x
        if k_done > 0 {
            let mut y = vec![0.0f64; k_done];
            for i in (0..k_done).rev() {
                let mut s = g[i];
                for (jj, &yjj) in y.iter().enumerate().skip(i + 1) {
                    s -= h[i][jj] * yjj;
                }
                y[i] = s / h[i][i];
            }
            for (jj, &yjj) in y.iter().enumerate() {
                axpy(yjj, &v[jj], &mut x);
            }
        }

        match outcome {
            GmresOutcome::Converged | GmresOutcome::Breakdown => break 'restart,
            GmresOutcome::MaxIterations => {} // continue restart cycles
        }
    }

    // true final residual
    let mut r = vec![0.0; n];
    a.apply(&x, &mut r);
    for (ri, &bi) in r.iter_mut().zip(b) {
        *ri = bi - *ri;
    }
    precond(&mut r);
    GmresResult {
        x,
        relative_residual: norm2(&r) / b_norm,
        iterations: total_iters,
        restarts: cycles.saturating_sub(1),
        history,
        outcome,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseMatrix;

    fn spd_system(n: usize) -> (DenseMatrix, Vec<f64>) {
        // diagonally dominant symmetric matrix
        let a = DenseMatrix::from_fn(n, n, |i, j| {
            if i == j {
                n as f64 + 1.0
            } else {
                1.0 / (1.0 + (i as f64 - j as f64).abs())
            }
        });
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin() + 1.0).collect();
        (a, b)
    }

    fn residual(a: &DenseMatrix, x: &[f64], b: &[f64]) -> f64 {
        let mut r = a.apply_vec(x);
        for (ri, bi) in r.iter_mut().zip(b) {
            *ri = bi - *ri;
        }
        norm2(&r) / norm2(b)
    }

    #[test]
    fn solves_identity_in_one_step() {
        let a = DenseMatrix::identity(8);
        let b: Vec<f64> = (0..8).map(f64::from).collect();
        let r = gmres(&a, &b, &GmresOptions::default());
        assert!(r.relative_residual < 1e-12);
        assert!(r.iterations <= 2);
        assert_eq!(r.restarts, 0);
        for (xi, bi) in r.x.iter().zip(&b) {
            assert!((xi - bi).abs() < 1e-10);
        }
    }

    #[test]
    fn solves_spd_system_with_restart_10() {
        let (a, b) = spd_system(60);
        let r = gmres(
            &a,
            &b,
            &GmresOptions {
                restart: 10,
                tol: 1e-10,
                ..Default::default()
            },
        );
        assert_eq!(r.outcome, GmresOutcome::Converged);
        assert!(
            residual(&a, &r.x, &b) < 1e-9,
            "residual {}",
            residual(&a, &r.x, &b)
        );
    }

    #[test]
    fn restart_smaller_than_dimension_still_converges() {
        let (a, b) = spd_system(40);
        let r = gmres(
            &a,
            &b,
            &GmresOptions {
                restart: 5,
                tol: 1e-8,
                max_iters: 400,
                ..Default::default()
            },
        );
        assert_eq!(r.outcome, GmresOutcome::Converged);
        assert!(r.relative_residual < 1e-8);
    }

    #[test]
    fn history_is_monotone_within_a_cycle() {
        let (a, b) = spd_system(50);
        let r = gmres(
            &a,
            &b,
            &GmresOptions {
                restart: 25,
                tol: 1e-12,
                ..Default::default()
            },
        );
        // within one Arnoldi cycle the Givens residual estimate is
        // nonincreasing
        for w in r.history.windows(2).take(24) {
            assert!(w[1] <= w[0] * (1.0 + 1e-12));
        }
    }

    #[test]
    fn zero_rhs_returns_zero() {
        let (a, _) = spd_system(10);
        let r = gmres(&a, &[0.0; 10], &GmresOptions::default());
        assert_eq!(r.outcome, GmresOutcome::Breakdown);
        assert!(r.x.iter().all(|&x| x == 0.0));
        assert_eq!(r.relative_residual, 0.0);
    }

    #[test]
    fn jacobi_preconditioner_reduces_iterations() {
        // badly scaled diagonal
        let n = 50;
        let a = DenseMatrix::from_fn(n, n, |i, j| {
            if i == j {
                10.0f64.powi((i % 5) as i32)
            } else {
                0.01
            }
        });
        let b: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64).cos()).collect();
        let plain = gmres(
            &a,
            &b,
            &GmresOptions {
                restart: 10,
                tol: 1e-10,
                max_iters: 300,
                preconditioner: None,
            },
        );
        let pre = gmres(
            &a,
            &b,
            &GmresOptions {
                restart: 10,
                tol: 1e-10,
                max_iters: 300,
                preconditioner: Some(JacobiPreconditioner::new(&a.diagonal())),
            },
        );
        assert_eq!(pre.outcome, GmresOutcome::Converged);
        assert!(
            pre.iterations <= plain.iterations,
            "preconditioned {} vs plain {}",
            pre.iterations,
            plain.iterations
        );
        assert!(residual(&a, &pre.x, &b) < 1e-8);
    }

    #[test]
    fn nonsymmetric_system() {
        let n = 30;
        let a = DenseMatrix::from_fn(n, n, |i, j| {
            if i == j {
                4.0
            } else if j == i + 1 {
                -1.5
            } else if i == j + 1 {
                -0.5
            } else {
                0.0
            }
        });
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).cos()).collect();
        let b = a.apply_vec(&x_true);
        let r = gmres(
            &a,
            &b,
            &GmresOptions {
                restart: 10,
                tol: 1e-12,
                ..Default::default()
            },
        );
        assert_eq!(r.outcome, GmresOutcome::Converged);
        for (xi, ti) in r.x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-8);
        }
    }

    #[test]
    fn budget_exhaustion_reports_max_iterations() {
        let (a, b) = spd_system(80);
        let r = gmres(
            &a,
            &b,
            &GmresOptions {
                restart: 4,
                tol: 1e-14,
                max_iters: 6,
                ..Default::default()
            },
        );
        assert_eq!(r.outcome, GmresOutcome::MaxIterations);
        assert_eq!(r.iterations, 6);
        // 6 matvecs at restart 4 = one full cycle plus one rebuild
        assert_eq!(r.restarts, 1);
        // even a truncated run must have made progress
        assert!(r.relative_residual < 1.0);
    }
}
