//! Iterative solvers and the small dense linear-algebra kernels they need.
//!
//! The paper applies its treecode to dense linear systems arising from
//! boundary-element discretisations of integral equations: "the treecode
//! was used to compute matrix-vector products with the approximation of the
//! dense matrices in each iteration of the GMRES iterative solver ... with
//! a restart of 10". This crate provides that solver stack, implemented
//! from scratch:
//!
//! * [`LinearOperator`] — anything that can apply `y = A·x` (dense matrices
//!   and treecode-accelerated operators both implement it),
//! * [`gmres`] — restarted GMRES(m) with modified Gram–Schmidt and Givens
//!   rotations,
//! * [`DenseMatrix`] — a row-major dense matrix with parallel matvec, used
//!   as the exact reference operator in the experiments,
//! * [`cg`] — conjugate gradients for the symmetric positive-definite
//!   operators of the BEM stack,
//! * a Jacobi (diagonal) preconditioner.

#![forbid(unsafe_code)]

pub mod cg;
pub mod dense;
pub mod gmres;
pub mod operator;

pub use cg::{cg, CgOptions, CgOutcome, CgResult};
pub use dense::DenseMatrix;
pub use gmres::{gmres, GmresOptions, GmresOutcome, GmresResult};
pub use operator::{JacobiPreconditioner, LinearOperator};
