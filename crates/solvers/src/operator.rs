//! The linear-operator abstraction.

/// Anything that can apply a square linear map `y = A·x`.
///
/// GMRES only ever touches the operator through this trait, so the same
/// solver runs against a dense matrix (exact, `O(n²)` per product) or a
/// treecode-approximated operator (`O(n log n)` per product) — exactly the
/// comparison of the paper's Table 3.
pub trait LinearOperator: Sync {
    /// Dimension of the (square) operator.
    fn dim(&self) -> usize;

    /// Computes `y = A·x`. `y` has length [`LinearOperator::dim`].
    fn apply(&self, x: &[f64], y: &mut [f64]);

    /// Convenience allocating form.
    fn apply_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.dim()];
        self.apply(x, &mut y);
        y
    }
}

/// A diagonal (Jacobi) preconditioner `M⁻¹ = diag(a₁₁,…,aₙₙ)⁻¹`.
#[derive(Debug, Clone)]
pub struct JacobiPreconditioner {
    inv_diag: Vec<f64>,
}

impl JacobiPreconditioner {
    /// Builds from the matrix diagonal. Zero entries are treated as 1 (no
    /// scaling) so the preconditioner is always applicable.
    #[must_use]
    pub fn new(diag: &[f64]) -> Self {
        JacobiPreconditioner {
            inv_diag: diag
                .iter()
                // lint: allow(float_cmp, exact-zero diagonal falls back to identity)
                .map(|&d| if d == 0.0 { 1.0 } else { 1.0 / d })
                .collect(),
        }
    }

    /// Applies `z = M⁻¹ r` in place.
    pub fn apply_in_place(&self, r: &mut [f64]) {
        for (ri, &di) in r.iter_mut().zip(&self.inv_diag) {
            *ri *= di;
        }
    }
}

impl LinearOperator for JacobiPreconditioner {
    fn dim(&self) -> usize {
        self.inv_diag.len()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        for ((yi, &xi), &di) in y.iter_mut().zip(x).zip(&self.inv_diag) {
            *yi = xi * di;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jacobi_inverts_diagonal() {
        let m = JacobiPreconditioner::new(&[2.0, 4.0, 0.0]);
        assert_eq!(m.dim(), 3);
        let y = m.apply_vec(&[2.0, 4.0, 5.0]);
        assert_eq!(y, vec![1.0, 1.0, 5.0]); // zero diagonal left unscaled
        let mut r = vec![2.0, 4.0, 5.0];
        m.apply_in_place(&mut r);
        assert_eq!(r, y);
    }
}
