//! Property-based tests of the iterative solvers on random systems.

use mbt_solvers::{
    cg, gmres, CgOptions, CgOutcome, DenseMatrix, GmresOptions, GmresOutcome, LinearOperator,
};
use proptest::prelude::*;

/// A random diagonally dominant (hence nonsingular) matrix.
fn dominant_matrix(n: usize, seed: u64, symmetric: bool) -> DenseMatrix {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    let mut m = DenseMatrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            if symmetric && j < i {
                m[(i, j)] = m[(j, i)];
            } else if i != j {
                m[(i, j)] = next() * 0.5;
            }
        }
    }
    for i in 0..n {
        m[(i, i)] = n as f64; // dominance
    }
    m
}

fn residual(a: &DenseMatrix, x: &[f64], b: &[f64]) -> f64 {
    let mut num = 0.0;
    let mut den = 0.0;
    for (i, bi) in b.iter().enumerate().take(a.rows()) {
        let ri: f64 = a.row(i).iter().zip(x).map(|(v, xi)| v * xi).sum::<f64>() - bi;
        num += ri * ri;
        den += bi * bi;
    }
    (num / den.max(1e-300)).sqrt()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// GMRES(10) solves every diagonally dominant system to tolerance.
    #[test]
    fn gmres_solves_dominant_systems(
        n in 5usize..40,
        seed in 0u64..1000,
    ) {
        let a = dominant_matrix(n, seed, false);
        let b: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 * 0.3).sin()).collect();
        let r = gmres(&a, &b, &GmresOptions { restart: 10, tol: 1e-10, max_iters: 500, preconditioner: None });
        prop_assert_eq!(r.outcome, GmresOutcome::Converged);
        prop_assert!(residual(&a, &r.x, &b) < 1e-8);
    }

    /// CG solves every symmetric dominant (hence SPD) system.
    #[test]
    fn cg_solves_spd_systems(
        n in 5usize..40,
        seed in 0u64..1000,
    ) {
        let a = dominant_matrix(n, seed, true);
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();
        let r = cg(&a, &b, &CgOptions { tol: 1e-11, max_iters: 500, preconditioner: None });
        prop_assert_eq!(r.outcome, CgOutcome::Converged);
        prop_assert!(residual(&a, &r.x, &b) < 1e-9);
    }

    /// CG and GMRES agree on SPD systems.
    #[test]
    fn cg_and_gmres_agree(
        n in 5usize..25,
        seed in 0u64..1000,
    ) {
        let a = dominant_matrix(n, seed, true);
        let b: Vec<f64> = (0..n).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let xc = cg(&a, &b, &CgOptions { tol: 1e-12, max_iters: 500, preconditioner: None }).x;
        let xg = gmres(&a, &b, &GmresOptions { restart: n, tol: 1e-12, max_iters: 500, preconditioner: None }).x;
        for (c, g) in xc.iter().zip(&xg) {
            prop_assert!((c - g).abs() < 1e-8 * (1.0 + g.abs()));
        }
    }

    /// GMRES reconstructs a known solution.
    #[test]
    fn gmres_recovers_known_solution(
        n in 5usize..30,
        seed in 0u64..1000,
    ) {
        let a = dominant_matrix(n, seed, false);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).sin() - 0.5).collect();
        let b = a.apply_vec(&x_true);
        let r = gmres(&a, &b, &GmresOptions { restart: 10, tol: 1e-12, max_iters: 800, preconditioner: None });
        for (xi, ti) in r.x.iter().zip(&x_true) {
            prop_assert!((xi - ti).abs() < 1e-7 * (1.0 + ti.abs()));
        }
    }
}
