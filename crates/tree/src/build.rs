//! Octree construction.
//!
//! 1. Compute the cubical hull of the particle set.
//! 2. Sort particles by Morton key (parallel sort; the per-octant digit of
//!    the key makes every cell a contiguous range and child partitioning a
//!    binary search, no data movement after the one sort).
//! 3. Split cells top-down until `leaf_capacity` is reached (or the key
//!    resolution floor — coincident particles cannot be separated).
//! 4. One bottom-up pass fills the cluster aggregates.

use std::sync::atomic::{AtomicU64, Ordering};

use mbt_geometry::{morton, Aabb, Particle, ParticleSoa, ParticleSoaF32, Vec3};
use rayon::prelude::*;

use crate::node::{Node, NodeId, NO_NODE};
use crate::stats::TreeStats;

/// Construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct OctreeParams {
    /// Maximum particles in a leaf. The paper notes leaves of 32–64
    /// particles optimise cache behaviour; 1 gives the textbook tree.
    pub leaf_capacity: usize,
}

impl Default for OctreeParams {
    fn default() -> Self {
        OctreeParams { leaf_capacity: 32 }
    }
}

/// Process-wide count of completed [`Octree::build`] calls.
///
/// A cheap diagnostic for caching layers that must *prove* a code path
/// built no tree (e.g. "a plan-cache hit performs zero builds"): read the
/// counter, run the path, read it again. One relaxed increment per build
/// is free next to the build itself.
static BUILDS: AtomicU64 = AtomicU64::new(0);

/// The number of octrees this process has built so far.
#[must_use]
pub fn build_count() -> u64 {
    // ordering: Relaxed — independent monotonic counter; no data is published through it
    BUILDS.load(Ordering::Relaxed)
}

/// Construction failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// No particles were supplied.
    Empty,
    /// A particle position or charge was NaN/∞.
    NonFinite {
        /// Index (in the caller's order) of the offending particle.
        index: usize,
    },
    /// `leaf_capacity` was zero.
    ZeroLeafCapacity,
}

impl std::fmt::Display for TreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeError::Empty => write!(f, "cannot build an octree over zero particles"),
            TreeError::NonFinite { index } => {
                write!(f, "particle {index} has a non-finite position or charge")
            }
            TreeError::ZeroLeafCapacity => write!(f, "leaf_capacity must be at least 1"),
        }
    }
}

impl std::error::Error for TreeError {}

/// The octree: an arena of [`Node`]s over a Morton-sorted particle array.
#[derive(Debug, Clone)]
pub struct Octree {
    nodes: Vec<Node>,
    particles: Vec<Particle>,
    /// Structure-of-arrays mirror of `particles` (same order), consumed by
    /// the batched evaluation kernels. Charges are kept in sync by
    /// [`Octree::with_charges`] / [`Octree::set_charges_only`].
    soa: ParticleSoa,
    /// Single-precision mirror of `soa` for the error-budgeted f32 near
    /// field. Rounded once per build and charge-synced alongside `soa`;
    /// plans that never admit the f32 tier simply never read it.
    soa32: ParticleSoaF32,
    keys: Vec<u64>,
    /// `perm[i]` = caller's index of sorted particle `i`.
    perm: Vec<usize>,
    bounds: Aabb,
    height: usize,
}

/// Morton digit (octant index) of `key` at tree `level` (root children are
/// level 1, extracted from the top key triple).
#[inline]
fn key_digit(key: u64, level: u16) -> u8 {
    let shift = 3 * (morton::BITS as u16 - level);
    ((key >> shift) & 0x7) as u8
}

impl Octree {
    /// Builds the tree. Particles are validated, sorted, and retained
    /// internally in sorted order; use [`Octree::perm`] / [`Octree::unsort`]
    /// to map results back to the caller's order.
    pub fn build(particles: &[Particle], params: OctreeParams) -> Result<Octree, TreeError> {
        if particles.is_empty() {
            return Err(TreeError::Empty);
        }
        if params.leaf_capacity == 0 {
            return Err(TreeError::ZeroLeafCapacity);
        }
        for (i, p) in particles.iter().enumerate() {
            if !p.position.is_finite() || !p.charge.is_finite() {
                return Err(TreeError::NonFinite { index: i });
            }
        }
        let positions: Vec<Vec3> = particles.iter().map(|p| p.position).collect();
        let bounds = Aabb::cubical_hull(&positions, 1e-9);

        let mut keyed: Vec<(u64, u32)> = particles
            .par_iter()
            .enumerate()
            .map(|(i, p)| (morton::key(p.position, &bounds), i as u32))
            .collect();
        keyed.par_sort_unstable();
        let keys: Vec<u64> = keyed.iter().map(|&(k, _)| k).collect();
        let perm: Vec<usize> = keyed.iter().map(|&(_, i)| i as usize).collect();
        let sorted: Vec<Particle> = perm.iter().map(|&i| particles[i]).collect();
        let soa = ParticleSoa::from_particles(&sorted);
        let soa32 = ParticleSoaF32::from_particles(&sorted);

        let mut tree = Octree {
            nodes: Vec::with_capacity(2 * particles.len() / params.leaf_capacity.max(1) + 64),
            particles: sorted,
            soa,
            soa32,
            keys,
            perm,
            bounds,
            height: 0,
        };
        tree.nodes.push(Node {
            bbox: bounds,
            start: 0,
            end: particles.len() as u32,
            children: [NO_NODE; 8],
            parent: NO_NODE,
            level: 0,
            is_leaf: true,
            center: Vec3::ZERO,
            abs_charge: 0.0,
            net_charge: 0.0,
            radius: 0.0,
        });
        tree.split_recursive(0, params.leaf_capacity);
        tree.compute_aggregates(0);
        tree.height = tree
            .nodes
            .iter()
            .map(|n| n.level as usize)
            .max()
            .unwrap_or(0);
        #[cfg(feature = "validate")]
        tree.validate_contracts();
        // ordering: Relaxed — independent monotonic counter; no data is published through it
        BUILDS.fetch_add(1, Ordering::Relaxed);
        Ok(tree)
    }

    /// Resident heap footprint of the tree in bytes (length-based: nodes,
    /// sorted particles, Morton keys, and the unsort permutation) — the
    /// quantity a plan cache charges against its byte budget.
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<Node>()
            + self.particles.len() * std::mem::size_of::<Particle>()
            + self.soa.heap_bytes()
            + self.soa32.heap_bytes()
            + self.keys.len() * std::mem::size_of::<u64>()
            + self.perm.len() * std::mem::size_of::<usize>()
    }

    /// Structural invariants, checked after every build when the
    /// `validate` feature is enabled (and callable from tests): Morton
    /// keys sorted non-decreasing, `perm` a permutation of `0..n`, every
    /// node range well-formed, and each internal node's range tiled
    /// exactly by its children in octant order.
    ///
    /// # Panics
    ///
    /// Panics when any contract is violated; violations indicate a bug in
    /// tree construction, never bad user input.
    #[cfg(feature = "validate")]
    pub fn validate_contracts(&self) {
        assert!(
            self.keys.windows(2).all(|w| w[0] <= w[1]),
            "validate: Morton keys not sorted after build"
        );
        let mut seen = vec![false; self.perm.len()];
        for &i in &self.perm {
            assert!(
                i < seen.len() && !seen[i],
                "validate: perm is not a permutation (index {i})"
            );
            seen[i] = true;
        }
        let n = self.particles.len() as u32;
        for (id, node) in self.nodes.iter().enumerate() {
            assert!(
                node.start <= node.end && node.end <= n,
                "validate: node {id} range out of bounds"
            );
            if !node.is_leaf {
                let mut cursor = node.start;
                for &c in &node.children {
                    if c == NO_NODE {
                        continue;
                    }
                    let ch = &self.nodes[c as usize];
                    assert!(
                        ch.parent == id as NodeId && ch.start == cursor,
                        "validate: children of node {id} do not tile its range"
                    );
                    cursor = ch.end;
                }
                assert_eq!(
                    cursor, node.end,
                    "validate: children of node {id} do not cover its range"
                );
            }
        }
        assert_eq!(
            self.soa.len(),
            self.particles.len(),
            "validate: SoA mirror length drifted from the particle array"
        );
        for (i, p) in self.particles.iter().enumerate() {
            assert!(
                self.soa.x[i].to_bits() == p.position.x.to_bits()
                    && self.soa.y[i].to_bits() == p.position.y.to_bits()
                    && self.soa.z[i].to_bits() == p.position.z.to_bits()
                    && self.soa.q[i].to_bits() == p.charge.to_bits(),
                "validate: SoA mirror disagrees with particle {i}"
            );
        }
        assert_eq!(
            self.soa32.len(),
            self.particles.len(),
            "validate: f32 SoA mirror length drifted from the particle array"
        );
        for (i, p) in self.particles.iter().enumerate() {
            assert!(
                self.soa32.q[i].to_bits() == (p.charge as f32).to_bits(),
                "validate: f32 SoA mirror charge disagrees with particle {i}"
            );
        }
    }

    /// Splits `id` while it exceeds the leaf capacity and key resolution
    /// remains.
    fn split_recursive(&mut self, id: NodeId, leaf_capacity: usize) {
        let (start, end, level, bbox) = {
            let n = &self.nodes[id as usize];
            (n.start, n.end, n.level, n.bbox)
        };
        if (end - start) as usize <= leaf_capacity || u32::from(level) >= morton::BITS {
            return;
        }
        let child_level = level + 1;
        let mut children = [NO_NODE; 8];
        let mut lo = start as usize;
        for octant in 0..8u8 {
            // binary search for the end of this octant's key run
            let hi = lo
                + self.keys[lo..end as usize]
                    .partition_point(|&k| key_digit(k, child_level) <= octant);
            if hi > lo {
                let cid = self.nodes.len() as NodeId;
                self.nodes.push(Node {
                    bbox: bbox.octant(octant as usize),
                    start: lo as u32,
                    end: hi as u32,
                    children: [NO_NODE; 8],
                    parent: id,
                    level: child_level,
                    is_leaf: true,
                    center: Vec3::ZERO,
                    abs_charge: 0.0,
                    net_charge: 0.0,
                    radius: 0.0,
                });
                children[octant as usize] = cid;
            }
            lo = hi;
        }
        debug_assert_eq!(lo, end as usize, "octant runs must cover the range");
        {
            let n = &mut self.nodes[id as usize];
            n.children = children;
            n.is_leaf = false;
        }
        for cid in children {
            if cid != NO_NODE {
                self.split_recursive(cid, leaf_capacity);
            }
        }
    }

    /// Bottom-up aggregate pass: `A`, net charge, center of charge, tight
    /// radius.
    fn compute_aggregates(&mut self, id: NodeId) {
        let (start, end, is_leaf, children) = {
            let n = &self.nodes[id as usize];
            (n.start as usize, n.end as usize, n.is_leaf, n.children)
        };
        if !is_leaf {
            for cid in children {
                if cid != NO_NODE {
                    self.compute_aggregates(cid);
                }
            }
        }
        let slice = &self.particles[start..end];
        let abs: f64 = slice.iter().map(|p| p.charge.abs()).sum();
        let net: f64 = slice.iter().map(|p| p.charge).sum();
        let center = if abs > 0.0 {
            slice
                .iter()
                .map(|p| p.position * p.charge.abs())
                .sum::<Vec3>()
                / abs
        } else {
            slice.iter().map(|p| p.position).sum::<Vec3>() / slice.len().max(1) as f64
        };
        let radius = slice
            .iter()
            .map(|p| p.position.distance(center))
            .fold(0.0, f64::max);
        let n = &mut self.nodes[id as usize];
        n.abs_charge = abs;
        n.net_charge = net;
        n.center = center;
        n.radius = radius;
    }

    /// The root node id (always 0).
    #[inline]
    #[must_use]
    pub fn root(&self) -> NodeId {
        0
    }

    /// A node by id.
    #[inline]
    #[must_use]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id as usize]
    }

    /// All nodes (arena order; parents precede children).
    #[inline]
    #[must_use]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The sorted particle array.
    #[inline]
    #[must_use]
    pub fn particles(&self) -> &[Particle] {
        &self.particles
    }

    /// The structure-of-arrays mirror of the sorted particle array.
    #[inline]
    #[must_use]
    pub fn particles_soa(&self) -> &ParticleSoa {
        &self.soa
    }

    /// The single-precision mirror of the sorted particle array, consumed
    /// by the f32 near-field kernels when a plan admits that tier.
    #[inline]
    #[must_use]
    pub fn particles_soa_f32(&self) -> &ParticleSoaF32 {
        &self.soa32
    }

    /// The particles of a node.
    #[inline]
    #[must_use]
    pub fn particles_of(&self, id: NodeId) -> &[Particle] {
        let n = &self.nodes[id as usize];
        &self.particles[n.start as usize..n.end as usize]
    }

    /// `perm()[i]` = the caller's index of sorted particle `i`.
    #[inline]
    #[must_use]
    pub fn perm(&self) -> &[usize] {
        &self.perm
    }

    /// Scatters per-sorted-particle values back to the caller's order.
    pub fn unsort<T: Copy + Default>(&self, values: &[T]) -> Vec<T> {
        assert_eq!(values.len(), self.perm.len());
        let mut out = vec![T::default(); values.len()];
        for (i, &orig) in self.perm.iter().enumerate() {
            out[orig] = values[i];
        }
        out
    }

    /// The root bounding cube.
    #[inline]
    #[must_use]
    pub fn bounds(&self) -> Aabb {
        self.bounds
    }

    /// Deepest level present (root = 0) — the `l` of the paper's
    /// complexity analysis.
    #[inline]
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of nodes.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tree has no nodes (never true for a built tree).
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Ids of all leaves.
    #[must_use]
    pub fn leaf_ids(&self) -> Vec<NodeId> {
        (0..self.nodes.len() as NodeId)
            .filter(|&id| self.nodes[id as usize].is_leaf)
            .collect()
    }

    /// Summary statistics.
    #[must_use]
    pub fn stats(&self) -> TreeStats {
        TreeStats::of(self)
    }

    /// The smallest positive leaf-cluster weight under a weighting
    /// function — the reference weight `w_ref` of Theorem 3's degree rule.
    pub fn min_leaf_weight(&self, weight: impl Fn(&Node) -> f64) -> f64 {
        self.nodes
            .iter()
            .filter(|n| n.is_leaf && !n.is_empty())
            .map(weight)
            .filter(|&w| w > 0.0)
            .fold(f64::INFINITY, f64::min)
    }

    /// Rebuilds the tree's charge-dependent state for a new charge vector
    /// (positions unchanged), given in the **caller's original order**.
    ///
    /// This is the fast path for iterative solvers whose operator applies
    /// the same geometry to a new density every iteration: the Morton sort
    /// and topology are reused; only the aggregates are recomputed.
    #[must_use]
    pub fn with_charges(&self, charges: &[f64]) -> Octree {
        assert_eq!(
            charges.len(),
            self.particles.len(),
            "charge vector length must match the particle count"
        );
        let mut out = self.clone();
        for (i, p) in out.particles.iter_mut().enumerate() {
            p.charge = charges[self.perm[i]];
        }
        out.soa.sync_charges(&out.particles);
        out.soa32.sync_charges(&out.particles);
        out.compute_aggregates(0);
        out
    }

    /// Replaces particle charges **without** recomputing node aggregates
    /// (centers, radii, `abs_charge` stay as built). Charges are given in
    /// the caller's original order.
    ///
    /// This keeps every geometric quantity of the decomposition fixed, so
    /// an operator built on top of the tree is *exactly linear* in the
    /// charge vector — required when the tree backs a matvec inside a
    /// Krylov solver. Use [`Octree::with_charges`] when the aggregates
    /// should track the new charges instead.
    pub fn set_charges_only(&mut self, charges: &[f64]) {
        assert_eq!(
            charges.len(),
            self.particles.len(),
            "charge vector length must match the particle count"
        );
        for i in 0..self.particles.len() {
            self.particles[i].charge = charges[self.perm[i]];
        }
        self.soa.sync_charges(&self.particles);
        self.soa32.sync_charges(&self.particles);
    }

    /// Exhaustive structural validation (test support): every particle in
    /// exactly one leaf, ranges nest, boxes contain their particles,
    /// aggregates consistent.
    pub fn validate(&self) -> Result<(), String> {
        let n_particles = self.particles.len();
        let mut covered = vec![0u8; n_particles];
        for (idx, node) in self.nodes.iter().enumerate() {
            if node.start > node.end || node.end as usize > n_particles {
                return Err(format!(
                    "node {idx}: bad range {}..{}",
                    node.start, node.end
                ));
            }
            if node.is_leaf {
                for i in node.start..node.end {
                    covered[i as usize] += 1;
                }
            } else {
                let mut child_total = 0;
                let mut cursor = node.start;
                for cid in node.child_ids() {
                    let c = &self.nodes[cid as usize];
                    if c.parent != idx as NodeId {
                        return Err(format!("child {cid} of {idx} has wrong parent"));
                    }
                    if c.start != cursor {
                        return Err(format!("child ranges of {idx} not contiguous"));
                    }
                    cursor = c.end;
                    child_total += c.len();
                    if c.level != node.level + 1 {
                        return Err(format!("child {cid} level wrong"));
                    }
                }
                if child_total != node.len() || cursor != node.end {
                    return Err(format!("children of {idx} do not cover its range"));
                }
            }
            // geometric containment (allow tiny quantisation slack at cell
            // faces: the Morton grid is 2^21 cells per axis)
            let slack = self.bounds.edge() * 2.0 / (1u64 << morton::BITS) as f64;
            let grown = Aabb::new(
                node.bbox.min - Vec3::splat(slack),
                node.bbox.max + Vec3::splat(slack),
            );
            for p in self.particles_of(idx as NodeId) {
                if !grown.contains(p.position) {
                    return Err(format!("node {idx}: particle escapes its box"));
                }
            }
            // aggregates
            if !node.is_empty() {
                let a: f64 = self
                    .particles_of(idx as NodeId)
                    .iter()
                    .map(|p| p.charge.abs())
                    .sum();
                if (a - node.abs_charge).abs() > 1e-9 * (1.0 + a) {
                    return Err(format!("node {idx}: abs_charge mismatch"));
                }
                let r_max = self
                    .particles_of(idx as NodeId)
                    .iter()
                    .map(|p| p.position.distance(node.center))
                    .fold(0.0, f64::max);
                if (r_max - node.radius).abs() > 1e-9 * (1.0 + r_max) {
                    return Err(format!("node {idx}: radius mismatch"));
                }
            }
        }
        if covered.iter().any(|&c| c != 1) {
            return Err("some particle is not covered by exactly one leaf".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbt_geometry::distribution::{gaussian, uniform_cube, ChargeModel};

    fn charges() -> ChargeModel {
        ChargeModel::RandomSign { magnitude: 1.0 }
    }

    #[test]
    fn build_uniform_and_validate() {
        let ps = uniform_cube(5000, 1.0, charges(), 42);
        let tree = Octree::build(&ps, OctreeParams { leaf_capacity: 16 }).unwrap();
        tree.validate().unwrap();
        assert!(tree.height() >= 3);
        assert_eq!(tree.node(tree.root()).len(), 5000);
        for &leaf in &tree.leaf_ids() {
            assert!(tree.node(leaf).len() <= 16);
        }
    }

    #[test]
    fn build_gaussian_and_validate() {
        let ps = gaussian(3000, Vec3::new(0.5, -0.5, 0.0), 0.4, charges(), 7);
        let tree = Octree::build(&ps, OctreeParams { leaf_capacity: 8 }).unwrap();
        tree.validate().unwrap();
    }

    #[test]
    fn leaf_capacity_one() {
        let ps = uniform_cube(300, 1.0, charges(), 3);
        let tree = Octree::build(&ps, OctreeParams { leaf_capacity: 1 }).unwrap();
        tree.validate().unwrap();
        for &leaf in &tree.leaf_ids() {
            assert_eq!(tree.node(leaf).len(), 1);
        }
    }

    #[test]
    fn coincident_particles_terminate() {
        // all particles at one point: splitting cannot separate them; the
        // key-resolution floor must stop recursion
        let ps = vec![Particle::new(Vec3::new(0.25, 0.5, 0.75), 1.0); 100];
        let tree = Octree::build(&ps, OctreeParams { leaf_capacity: 4 }).unwrap();
        tree.validate().unwrap();
        assert!(tree.height() as u32 <= morton::BITS);
    }

    #[test]
    fn root_aggregates() {
        let ps = uniform_cube(1000, 2.0, ChargeModel::Uniform { lo: -1.5, hi: 0.5 }, 9);
        let tree = Octree::build(&ps, OctreeParams::default()).unwrap();
        let root = tree.node(tree.root());
        let a: f64 = ps.iter().map(|p| p.charge.abs()).sum();
        let net: f64 = ps.iter().map(|p| p.charge).sum();
        assert!((root.abs_charge - a).abs() < 1e-9 * a);
        assert!((root.net_charge - net).abs() < 1e-9 * a);
        assert!(root.radius <= tree.bounds().circumradius() * 1.001);
    }

    #[test]
    fn f32_mirror_tracks_sorted_particles_and_charges() {
        let ps = uniform_cube(700, 1.0, charges(), 11);
        let mut tree = Octree::build(&ps, OctreeParams { leaf_capacity: 16 }).unwrap();
        let base = tree.heap_bytes();
        assert_eq!(tree.particles_soa_f32().len(), tree.particles().len());
        for (i, p) in tree.particles().iter().enumerate() {
            let m = tree.particles_soa_f32();
            assert_eq!(m.x[i].to_bits(), (p.position.x as f32).to_bits());
            assert_eq!(m.q[i].to_bits(), (p.charge as f32).to_bits());
        }
        // the mirror is charged against the byte budget
        assert!(base >= tree.particles_soa_f32().heap_bytes());
        let new_q: Vec<f64> = (0..ps.len()).map(|i| 0.5 + i as f64).collect();
        tree.set_charges_only(&new_q);
        for (i, &orig) in tree.perm().iter().enumerate() {
            assert_eq!(
                tree.particles_soa_f32().q[i].to_bits(),
                (new_q[orig] as f32).to_bits()
            );
        }
        let rebuilt = tree.with_charges(&new_q);
        assert_eq!(rebuilt.particles_soa_f32().q, tree.particles_soa_f32().q);
    }

    #[test]
    fn unsort_roundtrip() {
        let ps = uniform_cube(512, 1.0, charges(), 21);
        let tree = Octree::build(&ps, OctreeParams::default()).unwrap();
        let sorted_x: Vec<f64> = tree.particles().iter().map(|p| p.position.x).collect();
        let back = tree.unsort(&sorted_x);
        for (i, p) in ps.iter().enumerate() {
            assert_eq!(back[i], p.position.x);
        }
    }

    #[test]
    fn abs_charge_decreases_down_the_tree() {
        let ps = uniform_cube(4000, 1.0, charges(), 5);
        let tree = Octree::build(&ps, OctreeParams { leaf_capacity: 16 }).unwrap();
        for (idx, node) in tree.nodes().iter().enumerate() {
            for cid in node.child_ids() {
                assert!(
                    tree.node(cid).abs_charge <= node.abs_charge + 1e-12,
                    "child {cid} of {idx} has more charge than its parent"
                );
            }
        }
    }

    #[test]
    fn error_cases() {
        assert_eq!(
            Octree::build(&[], OctreeParams::default()).unwrap_err(),
            TreeError::Empty
        );
        let bad = [Particle::new(Vec3::new(f64::NAN, 0.0, 0.0), 1.0)];
        assert_eq!(
            Octree::build(&bad, OctreeParams::default()).unwrap_err(),
            TreeError::NonFinite { index: 0 }
        );
        let ok = [Particle::new(Vec3::ZERO, 1.0)];
        assert_eq!(
            Octree::build(&ok, OctreeParams { leaf_capacity: 0 }).unwrap_err(),
            TreeError::ZeroLeafCapacity
        );
    }

    #[test]
    fn single_particle_tree() {
        let ps = [Particle::new(Vec3::new(1.0, 2.0, 3.0), -2.5)];
        let tree = Octree::build(&ps, OctreeParams::default()).unwrap();
        tree.validate().unwrap();
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.height(), 0);
        assert_eq!(tree.node(0).abs_charge, 2.5);
    }

    #[test]
    fn min_leaf_weight() {
        let ps = uniform_cube(2000, 1.0, charges(), 13);
        let tree = Octree::build(&ps, OctreeParams { leaf_capacity: 32 }).unwrap();
        let w = tree.min_leaf_weight(|n| n.abs_charge);
        assert!(w >= 1.0 - 1e-12); // unit |q| per particle
        assert!(w <= 32.0 + 1e-12);
    }

    #[test]
    fn height_scales_logarithmically() {
        let small = Octree::build(
            &uniform_cube(1000, 1.0, charges(), 1),
            OctreeParams { leaf_capacity: 8 },
        )
        .unwrap();
        let large = Octree::build(
            &uniform_cube(64_000, 1.0, charges(), 1),
            OctreeParams { leaf_capacity: 8 },
        )
        .unwrap();
        // 64x the particles in 3-D: expect about log8(64) = 2 extra levels
        let dh = large.height() as i64 - small.height() as i64;
        assert!((1..=4).contains(&dh), "unexpected height growth {dh}");
    }
}
