//! Adaptive octree over Morton-sorted particles.
//!
//! The hierarchical domain decomposition both treecode flavours (Barnes–Hut
//! in `mbt-treecode`, FMM in `mbt-fmm`) traverse. Particles are sorted once
//! by Morton key inside their cubical hull; every octree cell then owns a
//! contiguous index range, children are located by binary search on the key
//! digits, and the per-node aggregates the paper's error analysis needs —
//! total absolute charge `A = Σ|qᵢ|`, center of charge, tight cluster
//! radius — are computed in a single bottom-up pass.

#![forbid(unsafe_code)]

pub mod build;
pub mod node;
pub mod stats;

pub use build::{build_count, Octree, OctreeParams, TreeError};
pub use node::{Node, NodeId, NO_NODE};
pub use stats::TreeStats;
