//! Octree node records.

use mbt_geometry::{Aabb, Vec3};

/// Index of a node in the tree arena.
pub type NodeId = u32;

/// Sentinel for "no node" in child/parent links.
pub const NO_NODE: NodeId = u32::MAX;

/// One octree cell.
///
/// Nodes are stored in an arena (`Vec<Node>`); tree topology is expressed
/// with `NodeId` links so the whole structure is `Send + Sync` and can be
/// traversed concurrently from many evaluation threads without locks.
#[derive(Debug, Clone)]
pub struct Node {
    /// Cubical cell bounds.
    pub bbox: Aabb,
    /// Index range `[start, end)` of this cell's particles in the tree's
    /// sorted particle array.
    pub start: u32,
    /// One past the last particle index.
    pub end: u32,
    /// Children ids (`NO_NODE` where absent). Leaves have all-absent.
    pub children: [NodeId; 8],
    /// Parent id (`NO_NODE` for the root).
    pub parent: NodeId,
    /// Depth (root = 0).
    pub level: u16,
    /// True when this node holds its particles directly.
    pub is_leaf: bool,
    /// Center of absolute charge — the multipole expansion center. The
    /// paper's MAC measures distance to this point.
    pub center: Vec3,
    /// Total absolute charge `A = Σ|qᵢ|` (Theorems 2–3 weight clusters by
    /// this).
    pub abs_charge: f64,
    /// Net signed charge.
    pub net_charge: f64,
    /// Tight cluster radius: max distance from `center` to any contained
    /// particle. Never exceeds the cell circumradius; using it sharpens the
    /// Theorem-1 bound.
    pub radius: f64,
}

impl Node {
    /// Number of particles in the cell.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// True when the cell holds no particles.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The cell edge length — the "dimension of the box enclosing the
    /// cluster" (`d`) of the α-criterion.
    #[inline]
    #[must_use]
    pub fn edge(&self) -> f64 {
        self.bbox.edge()
    }

    /// Iterator over present child ids.
    #[inline]
    pub fn child_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.children.iter().copied().filter(|&c| c != NO_NODE)
    }
}
