//! Tree summary statistics.

use crate::build::Octree;

/// Aggregate facts about a built octree, used by the harnesses and by the
/// complexity checks of Theorem 4 (which reason about the height `l` and
/// the per-level cluster counts).
#[derive(Debug, Clone, PartialEq)]
pub struct TreeStats {
    /// Total particles.
    pub particles: usize,
    /// Total nodes.
    pub nodes: usize,
    /// Leaves.
    pub leaves: usize,
    /// Deepest level (root = 0).
    pub height: usize,
    /// Nodes per level, `per_level[l]`.
    pub per_level: Vec<usize>,
    /// Largest leaf population.
    pub max_leaf: usize,
    /// Mean leaf population.
    pub mean_leaf: f64,
    /// Total absolute charge of the system.
    pub abs_charge: f64,
}

impl TreeStats {
    /// Computes statistics of a tree.
    #[must_use]
    pub fn of(tree: &Octree) -> TreeStats {
        let mut per_level = vec![0usize; tree.height() + 1];
        let mut leaves = 0usize;
        let mut max_leaf = 0usize;
        let mut leaf_total = 0usize;
        for n in tree.nodes() {
            per_level[n.level as usize] += 1;
            if n.is_leaf {
                leaves += 1;
                max_leaf = max_leaf.max(n.len());
                leaf_total += n.len();
            }
        }
        TreeStats {
            particles: tree.particles().len(),
            nodes: tree.len(),
            leaves,
            height: tree.height(),
            per_level,
            max_leaf,
            mean_leaf: leaf_total as f64 / leaves.max(1) as f64,
            abs_charge: tree.node(tree.root()).abs_charge,
        }
    }
}

impl std::fmt::Display for TreeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} nodes={} leaves={} height={} max_leaf={} mean_leaf={:.1} A={:.3}",
            self.particles,
            self.nodes,
            self.leaves,
            self.height,
            self.max_leaf,
            self.mean_leaf,
            self.abs_charge
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::OctreeParams;
    use mbt_geometry::distribution::{uniform_cube, ChargeModel};

    #[test]
    fn stats_consistency() {
        let ps = uniform_cube(3000, 1.0, ChargeModel::RandomSign { magnitude: 1.0 }, 17);
        let tree = Octree::build(&ps, OctreeParams { leaf_capacity: 24 }).unwrap();
        let s = tree.stats();
        assert_eq!(s.particles, 3000);
        assert_eq!(s.nodes, tree.len());
        assert_eq!(s.per_level.iter().sum::<usize>(), s.nodes);
        assert_eq!(s.per_level[0], 1);
        assert!(s.max_leaf <= 24);
        assert!((s.mean_leaf - 3000.0 / s.leaves as f64).abs() < 1e-9);
        assert!((s.abs_charge - 3000.0).abs() < 1e-9);
        // displays without panicking
        let text = format!("{s}");
        assert!(text.contains("n=3000"));
    }
}
