//! Property-based tests of the octree invariants.

use mbt_geometry::{Particle, Vec3};
use mbt_tree::{Octree, OctreeParams};
use proptest::prelude::*;

fn arb_particles(max_n: usize) -> impl Strategy<Value = Vec<Particle>> {
    prop::collection::vec(
        (-10.0f64..10.0, -10.0f64..10.0, -10.0f64..10.0, -3.0f64..3.0)
            .prop_map(|(x, y, z, q)| Particle::new(Vec3::new(x, y, z), q)),
        1..max_n,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The full structural validation passes for arbitrary inputs and leaf
    /// capacities: partition, containment, aggregates.
    #[test]
    fn structure_valid(ps in arb_particles(300), leaf in 1usize..40) {
        let tree = Octree::build(&ps, OctreeParams { leaf_capacity: leaf }).unwrap();
        prop_assert!(tree.validate().is_ok(), "{:?}", tree.validate());
    }

    /// Every particle appears exactly once across the sorted array, and
    /// the permutation is a bijection.
    #[test]
    fn permutation_bijective(ps in arb_particles(200)) {
        let tree = Octree::build(&ps, OctreeParams::default()).unwrap();
        let mut seen = vec![false; ps.len()];
        for &i in tree.perm() {
            prop_assert!(!seen[i]);
            seen[i] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
        // unsort of identity recovers original positions
        let xs: Vec<f64> = tree.particles().iter().map(|p| p.position.x).collect();
        let back = tree.unsort(&xs);
        for (b, p) in back.iter().zip(&ps) {
            prop_assert_eq!(*b, p.position.x);
        }
    }

    /// Root aggregates equal whole-set aggregates.
    #[test]
    fn root_aggregates_match(ps in arb_particles(200)) {
        let tree = Octree::build(&ps, OctreeParams::default()).unwrap();
        let root = tree.node(tree.root());
        let a: f64 = ps.iter().map(|p| p.charge.abs()).sum();
        let net: f64 = ps.iter().map(|p| p.charge).sum();
        prop_assert!((root.abs_charge - a).abs() <= 1e-9 * (1.0 + a));
        prop_assert!((root.net_charge - net).abs() <= 1e-9 * (1.0 + a));
        prop_assert_eq!(root.len(), ps.len());
    }

    /// Leaf capacity is respected unless particles are key-coincident.
    #[test]
    fn leaf_capacity_respected(ps in arb_particles(300), leaf in 1usize..16) {
        let tree = Octree::build(&ps, OctreeParams { leaf_capacity: leaf }).unwrap();
        for &id in &tree.leaf_ids() {
            let node = tree.node(id);
            if node.len() > leaf {
                // only allowed at the key-resolution floor
                prop_assert!(u32::from(node.level) >= mbt_geometry::morton::BITS,
                    "oversized leaf above the resolution floor");
            }
        }
    }

    /// `set_charges_only` keeps geometry fixed; `with_charges` updates
    /// aggregates consistently.
    #[test]
    fn charge_swaps(ps in arb_particles(100), scale in 0.25f64..4.0) {
        let tree = Octree::build(&ps, OctreeParams::default()).unwrap();
        let new_charges: Vec<f64> = ps.iter().map(|p| p.charge * scale).collect();

        let mut frozen = tree.clone();
        frozen.set_charges_only(&new_charges);
        for (a, b) in frozen.nodes().iter().zip(tree.nodes()) {
            prop_assert_eq!(a.center, b.center);
            prop_assert_eq!(a.abs_charge, b.abs_charge); // stale by design
        }

        let updated = tree.with_charges(&new_charges);
        let root = updated.node(updated.root());
        let expect: f64 = new_charges.iter().map(|q| q.abs()).sum();
        prop_assert!((root.abs_charge - expect).abs() <= 1e-9 * (1.0 + expect));
    }

    /// Parent ranges are exactly the concatenation of children ranges.
    #[test]
    fn ranges_nest(ps in arb_particles(300)) {
        let tree = Octree::build(&ps, OctreeParams { leaf_capacity: 4 }).unwrap();
        for node in tree.nodes() {
            if !node.is_leaf {
                let mut cursor = node.start;
                for cid in node.child_ids() {
                    let c = tree.node(cid);
                    prop_assert_eq!(c.start, cursor);
                    cursor = c.end;
                }
                prop_assert_eq!(cursor, node.end);
            }
        }
    }
}
