// Hot-path allocation violations: each marked line must be flagged.
pub fn kernel(xs: &[f64]) -> Vec<f64> {
    let mut out = Vec::new(); // violation: Vec::new
    let tmp = vec![0.0; xs.len()]; // violation: vec![]
    let copy = xs.to_vec(); // violation: to_vec
    let boxed = Box::new(1.0); // violation: Box::new
    let doubled: Vec<f64> = xs.iter().map(|x| x * 2.0).collect(); // violation: collect
    let again = doubled.clone(); // violation: clone
    out.extend(tmp);
    out.extend(copy);
    out.push(*boxed);
    out.extend(again);
    out
}
