// The list-compiler idiom used by `core::compile` and
// `multipole::batch`: buffers grow once (with_capacity / resize) and are
// reused via clear/push/extend across chunks. None of that allocates per
// task, so none of it may be flagged by the alloc lint.
pub struct ListScratch {
    stack: Vec<u32>,
    tasks: Vec<(u32, u32)>,
    sorted: Vec<(u32, u32)>,
    cursors: Vec<u32>,
}

impl ListScratch {
    pub fn new(height: usize, chunk: usize) -> ListScratch {
        ListScratch {
            stack: Vec::with_capacity(8 * (height + 1)),
            tasks: Vec::with_capacity(chunk * 8),
            sorted: Vec::with_capacity(chunk * 8),
            cursors: Vec::with_capacity(64),
        }
    }

    pub fn compile(&mut self, roots: &[u32]) {
        self.stack.clear();
        self.tasks.clear();
        self.stack.extend(roots.iter().copied());
        while let Some(id) = self.stack.pop() {
            if id % 2 == 0 {
                self.tasks.push((id, id / 2));
            } else if id > 1 {
                self.stack.push(id - 1);
            }
        }
    }

    pub fn bucket(&mut self, max_key: usize) {
        self.cursors.clear();
        self.cursors.resize(max_key + 1, 0);
        for t in &self.tasks {
            self.cursors[t.1 as usize % (max_key + 1)] += 1;
        }
        let mut sum = 0;
        for c in &mut self.cursors {
            let count = *c;
            *c = sum;
            sum += count;
        }
        self.sorted.clear();
        self.sorted.resize(self.tasks.len(), (0, 0));
        for t in &self.tasks {
            let slot = &mut self.cursors[t.1 as usize % (max_key + 1)];
            self.sorted[*slot as usize] = *t;
            *slot += 1;
        }
    }
}
