// Clean hot-path code: waivered constructors, test-only allocation, and
// lint keywords inside strings/comments must all be ignored.
pub struct Scratch {
    buf: Vec<f64>,
}

impl Scratch {
    pub fn with_capacity(n: usize) -> Scratch {
        Scratch {
            buf: vec![0.0; n], // lint: allow(alloc, one-time constructor)
        }
    }

    pub fn accumulate(&mut self, xs: &[f64]) -> f64 {
        // "let v = Vec::new();" in a comment is not code
        let label = "uses .collect() internally"; // string, not code
        let _ = label;
        let mut sum = 0.0;
        for (slot, x) in self.buf.iter_mut().zip(xs) {
            *slot += *x;
            sum += *slot;
        }
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_may_allocate() {
        let xs: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let mut s = Scratch::with_capacity(xs.len());
        assert!(s.accumulate(&xs) > 0.0);
    }
}
