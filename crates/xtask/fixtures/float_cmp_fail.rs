// Float-comparison violations: each marked line must be flagged.
pub fn checks(x: f64, y: f32) -> bool {
    let a = x == 1.5; // violation: literal compare
    let b = y != 0.25; // violation: literal compare, f32
    let c = x == 1e-3; // violation: scientific literal
    let d = 2.0 * x != 3.0 * x; // violation: float arithmetic operand
    a && b && c && d
}
