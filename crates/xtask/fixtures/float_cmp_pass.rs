// Clean comparisons: integers, epsilon tests, ordering operators, a
// reasoned waiver, and exact comparisons inside tests.
pub fn checks(n: usize, x: f64) -> bool {
    let ints = n == 3; // integer compare: fine
    let eps = (x - 1.5).abs() < 1e-12; // the idiomatic float test
    let ord = x <= 2.0 && x >= -2.0; // ordering, not equality
    let zero = x == 0.0; // lint: allow(float_cmp, exact-zero guard for the branch below)
    ints && eps && ord && !zero
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_compare_allowed_in_tests() {
        assert!(0.5 == 0.5);
        assert!(checks(3, 1.5));
    }
}
