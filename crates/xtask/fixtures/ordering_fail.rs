// Atomic orderings with no adjacent `// ordering:` justification, plus a
// reasonless waiver (the reason is mandatory).
use std::sync::atomic::{AtomicU64, Ordering};

pub struct Counter {
    hits: AtomicU64,
    seq: AtomicU64,
}

impl Counter {
    pub fn bump(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed); // violation
    }

    pub fn publish(&self) {
        // a comment that is not a justification
        self.seq.store(2, Ordering::Release); // violation
    }

    pub fn read(&self) -> u64 {
        self.seq.load(Ordering::Acquire) // violation
    }

    pub fn sync(&self) -> u64 {
        self.seq.load(Ordering::SeqCst) // lint: allow(ordering)
    }
}
