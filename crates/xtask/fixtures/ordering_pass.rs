// Clean library code: every ordering justified same-line or within three
// lines above, a reasoned waiver, and an exempt test module.
use std::sync::atomic::{AtomicU64, Ordering};

pub struct Counter {
    hits: AtomicU64,
    seq: AtomicU64,
}

impl Counter {
    pub fn bump(&self) {
        // ordering: Relaxed — independent monotonic counter; no data is
        // published through it
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    pub fn publish(&self) {
        self.seq.store(2, Ordering::Release); // ordering: pairs with read()'s Acquire
    }

    pub fn read(&self) -> u64 {
        // ordering: Acquire pairs with publish()'s Release store, making
        // everything written before the publish visible here
        self.seq.load(Ordering::Acquire)
    }

    pub fn sync(&self) -> u64 {
        self.seq.load(Ordering::SeqCst) // lint: allow(ordering, total order audit pending issue #7)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_need_no_justification() {
        let c = Counter {
            hits: AtomicU64::new(0),
            seq: AtomicU64::new(0),
        };
        c.bump();
        assert_eq!(c.hits.load(Ordering::SeqCst), 1);
    }
}
