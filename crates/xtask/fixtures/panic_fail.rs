// Panic-surface violations in library code: each marked line must be
// flagged, including a waiver that is missing its mandatory reason.
pub fn first(xs: &[f64]) -> f64 {
    let head = xs.first().unwrap(); // violation: unwrap
    let tail = xs.last().expect("non-empty"); // violation: expect
    if xs.len() > 64 {
        panic!("too long"); // violation: panic!
    }
    if *head < 0.0 {
        todo!() // violation: todo!
    }
    let _ = xs.iter().next().unwrap(); // lint: allow(panic)
    head + tail
}
