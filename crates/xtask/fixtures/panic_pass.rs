// Clean library code: fallible returns, a reasoned waiver, and unwrap in
// a test module are all acceptable.
pub fn first(xs: &[f64]) -> Option<f64> {
    xs.first().copied()
}

pub fn checked_mid(xs: &[f64]) -> f64 {
    // the caller guarantees non-emptiness via the public constructor
    xs[xs.len() / 2] // indexing is allowed; the lint targets unwrap/panic
}

pub fn locked(v: &mbt_check::sync::Mutex<f64>) -> f64 {
    *v.lock().unwrap() // lint: allow(panic, mutex poisoning is unrecoverable here)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_is_fine_in_tests() {
        assert_eq!(first(&[1.0]).unwrap(), 1.0);
    }
}
