// Unannotated unsafe: each marked line must be flagged.
pub fn read_first(xs: &[f64]) -> f64 {
    unsafe { *xs.as_ptr() } // violation: no SAFETY comment
}

unsafe fn raw_add(p: *const f64, i: usize) -> *const f64 {
    // violation above: the fn declaration lacks an annotation
    unsafe { p.add(i) } // violation: inner block also unannotated
}

pub fn second(xs: &[f64]) -> f64 {
    unsafe { *raw_add(xs.as_ptr(), 1) } // violation: unannotated
}
