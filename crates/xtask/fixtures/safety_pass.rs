// Annotated unsafe: SAFETY on the same line or within three lines above.
pub fn read_first(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    // SAFETY: the assert above guarantees at least one element.
    unsafe { *xs.as_ptr() }
}

// SAFETY: callers must pass `i < len`; every call site asserts it.
unsafe fn raw_add(p: *const f64, i: usize) -> *const f64 {
    // SAFETY: contract inherited from the enclosing fn.
    unsafe { p.add(i) }
}

pub fn second(xs: &[f64]) -> f64 {
    assert!(xs.len() > 1);
    unsafe { *raw_add(xs.as_ptr(), 1) } // SAFETY: length checked above
}
