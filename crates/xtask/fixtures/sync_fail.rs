// A facade module reaching std::sync directly: every such line is
// flagged unless it carries a reasoned waiver.
use std::sync::atomic::AtomicU64; // violation
use std::sync::{Condvar, Mutex}; // violation

pub struct Gate {
    open: Mutex<bool>,
    bell: Condvar,
    count: AtomicU64,
}

impl Gate {
    pub fn wait(&self) {
        let mut open = self.open.lock().unwrap_or_else(std::sync::PoisonError::into_inner); // violation
        while !*open {
            open = self
                .bell
                .wait(open)
                // std::sync::WaitTimeoutResult is a plain value type, not a primitive
                .unwrap_or_else(std::sync::PoisonError::into_inner); // lint: allow(sync, PoisonError is a value type the facade re-exports from std)
        }
        let _ = &self.count;
    }
}
