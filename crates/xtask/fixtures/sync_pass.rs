// Clean facade module: primitives come from mbt_check::sync, so the
// instrumented builds can explore this code.
use mbt_check::sync::atomic::{AtomicU64, Ordering};
use mbt_check::sync::{Condvar, Mutex, PoisonError};

pub struct Gate {
    open: Mutex<bool>,
    bell: Condvar,
    count: AtomicU64,
}

impl Gate {
    pub fn wait(&self) {
        let mut open = self.open.lock().unwrap_or_else(PoisonError::into_inner);
        while !*open {
            open = self.bell.wait(open).unwrap_or_else(PoisonError::into_inner);
        }
        // ordering: Relaxed — independent monotonic counter; no data is
        // published through it
        self.count.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    // test code may use std::sync freely (e.g. scoped-thread harnesses)
    use std::sync::mpsc;

    #[test]
    fn channels_are_fine_in_tests() {
        let (tx, rx) = mpsc::channel();
        tx.send(1u32).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
    }
}
