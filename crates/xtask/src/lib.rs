//! Workspace invariant enforcement (`cargo xtask lint`).
//!
//! The treecode's performance guarantees are structural — allocation-free
//! evaluation kernels, a panic-free library surface, no accidental exact
//! float comparisons, and documented `unsafe` — but nothing in the type
//! system enforces them. This crate parses every workspace source file and
//! turns those properties into hard CI failures:
//!
//! * **alloc** — no `Vec::new` / `vec![]` / `to_vec` / `clone` /
//!   `Box::new` / `collect` in the designated hot modules
//!   (`core::{eval,compile,upward}`, `multipole::{workspace,expansion,
//!   translation,harmonics,legendre,batch}`, `engine::batch`) outside
//!   `#[cfg(test)]`,
//! * **panic** — no `unwrap()` / `expect()` / `panic!` / `todo!` /
//!   `unimplemented!` in library code outside `#[cfg(test)]`,
//! * **float_cmp** — no `==` / `!=` against float expressions outside
//!   tests,
//! * **safety** — every `unsafe` token (fn, impl, block) carries a
//!   `// SAFETY:` comment on the same line or within three lines above,
//! * **ordering** — every explicit atomic ordering
//!   (`Ordering::{Relaxed,Acquire,Release,AcqRel,SeqCst}`) in library
//!   code carries a `// ordering:` justification on the same line or in
//!   the comment block directly above (the registry the mbt-check model
//!   suite keeps honest; `crates/check` itself is exempt — it implements
//!   the memory model),
//! * **sync** — the concurrency facade modules (see
//!   [`SYNC_FACADE_MODULES`]) never name `std::sync` directly; they go
//!   through `mbt_check::sync` so model-checker builds instrument them.
//!
//! Any line can opt out with `// lint: allow(<lint>, <reason>)`; the
//! reason is mandatory, so the waiver list doubles as an audited registry
//! of every exception (see `DESIGN.md` §8).

#![forbid(unsafe_code)]

pub mod lints;
pub mod scan;

pub use lints::{Lint, Violation};

use std::path::{Path, PathBuf};

/// The modules whose steady-state paths must not allocate (lint `alloc`).
/// The `mbt-obs` recording primitives are included: spans, ring pushes,
/// histogram updates, and slow-log appends sit on the engine's serving
/// path, so their record sides must stay allocation-free (snapshot /
/// drain sides carry audited waivers).
pub const HOT_MODULES: &[&str] = &[
    "crates/core/src/eval.rs",
    "crates/core/src/compile.rs",
    "crates/core/src/upward.rs",
    "crates/multipole/src/workspace.rs",
    "crates/multipole/src/expansion.rs",
    "crates/multipole/src/translation.rs",
    "crates/multipole/src/harmonics.rs",
    "crates/multipole/src/legendre.rs",
    "crates/multipole/src/batch.rs",
    "crates/multipole/src/simd.rs",
    "crates/engine/src/batch.rs",
    "crates/engine/src/fanout.rs",
    "crates/fmm/src/compiled.rs",
    "crates/fmm/src/grid.rs",
    "crates/shard/src/skeleton.rs",
    "crates/obs/src/span.rs",
    "crates/obs/src/ring.rs",
    "crates/obs/src/hist.rs",
];

/// Crates whose `src/` trees count as harnesses, not library surface
/// (binaries and dev tooling may unwrap on bad CLI input).
const HARNESS_CRATES: &[&str] = &["crates/bench/", "crates/xtask/"];

/// Modules that must reach synchronization primitives exclusively through
/// the `mbt_check::sync` facade (lint `sync`). These are exactly the
/// modules the model suite (`crates/check/tests/models.rs`) exercises — a
/// raw `std::sync` here would silently drop the code out of every
/// model-checker build.
pub const SYNC_FACADE_MODULES: &[&str] = &[
    "crates/obs/src/span.rs",
    "crates/obs/src/ring.rs",
    "crates/obs/src/hist.rs",
    "crates/engine/src/cache.rs",
    "crates/engine/src/scheduler.rs",
    "crates/engine/src/stats.rs",
    "crates/engine/src/admission.rs",
    "crates/engine/src/wfq.rs",
    "crates/engine/src/tenant.rs",
    "crates/engine/src/flight.rs",
];

/// What lints apply to one source file.
// each flag is an independent applicability axis set by `classify`, not
// encoded state — a bitflags type would only obscure the fixture tests
#[allow(clippy::struct_excessive_bools)]
#[derive(Debug, Clone, Default)]
pub struct FileClass {
    /// Subject to the hot-path allocation lint.
    pub hot: bool,
    /// Subject to the panic and float-compare lints (library, non-test).
    pub library: bool,
    /// Subject to the atomic-ordering justification lint.
    pub ordering: bool,
    /// Subject to the `std::sync`-forbidden facade lint.
    pub sync_facade: bool,
}

/// Classifies a workspace-relative path (`/`-separated).
#[must_use]
pub fn classify(rel: &str) -> FileClass {
    let hot = HOT_MODULES.contains(&rel);
    let is_test_tree =
        rel.contains("/tests/") || rel.contains("/benches/") || rel.starts_with("tests/");
    let is_harness = HARNESS_CRATES.iter().any(|c| rel.starts_with(c))
        || rel.starts_with("examples/")
        || rel.contains("/src/bin/")
        || rel.starts_with("shims/");
    let in_lib_tree =
        rel.starts_with("src/") || (rel.starts_with("crates/") && rel.contains("/src/"));
    let library = in_lib_tree && !is_test_tree && !is_harness;
    FileClass {
        hot,
        library,
        // the checker crate implements the memory model; annotating its
        // own internals with `// ordering:` would be circular
        ordering: library && !rel.starts_with("crates/check/"),
        sync_facade: SYNC_FACADE_MODULES.contains(&rel),
    }
}

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures", "results", ".github"];

/// All `.rs` files under `root`, workspace-relative, sorted.
pub fn workspace_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Lints one source text under a given classification (the unit the
/// fixture tests drive directly).
#[must_use]
pub fn lint_source(class: &FileClass, path: &str, source: &str) -> Vec<Violation> {
    let scanned = scan::scan(source);
    lints::lint_scanned(class, path, &scanned)
}

/// Runs every lint over the whole workspace rooted at `root`.
pub fn run_lints(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut all = Vec::new();
    for path in workspace_sources(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let class = classify(&rel);
        let source = std::fs::read_to_string(&path)?;
        all.extend(lint_source(&class, &rel, &source));
    }
    Ok(all)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(classify("crates/core/src/eval.rs").hot);
        assert!(classify("crates/core/src/eval.rs").library);
        assert!(classify("crates/core/src/compile.rs").hot);
        assert!(classify("crates/multipole/src/batch.rs").hot);
        assert!(classify("crates/multipole/src/batch.rs").library);
        assert!(classify("crates/multipole/src/simd.rs").hot);
        assert!(classify("crates/multipole/src/simd.rs").library);
        assert!(!classify("crates/core/src/mac.rs").hot);
        assert!(classify("crates/engine/src/batch.rs").hot);
        assert!(classify("crates/engine/src/batch.rs").library);
        assert!(classify("crates/obs/src/ring.rs").hot);
        assert!(classify("crates/obs/src/hist.rs").hot);
        assert!(classify("crates/obs/src/span.rs").hot);
        assert!(classify("crates/obs/src/span.rs").library);
        assert!(!classify("crates/obs/src/export.rs").hot);
        assert!(!classify("crates/engine/src/cache.rs").hot);
        assert!(classify("crates/engine/src/cache.rs").library);
        assert!(classify("crates/solvers/src/cg.rs").library);
        assert!(!classify("crates/core/tests/alloc_count.rs").library);
        assert!(!classify("crates/bench/src/lib.rs").library);
        assert!(!classify("crates/bench/src/bin/table1.rs").library);
        assert!(!classify("shims/rayon/src/lib.rs").library);
        assert!(!classify("examples/galaxy.rs").library);
        assert!(classify("src/lib.rs").library);
        assert!(!classify("tests/end_to_end.rs").library);
    }

    #[test]
    fn ordering_and_sync_classification() {
        // every library file outside crates/check is ordering-audited
        assert!(classify("crates/obs/src/ring.rs").ordering);
        assert!(classify("crates/engine/src/stats.rs").ordering);
        assert!(classify("crates/multipole/src/simd.rs").ordering);
        // the checker implements the memory model — exempt
        assert!(classify("crates/check/src/sync_impl.rs").library);
        assert!(!classify("crates/check/src/sync_impl.rs").ordering);
        // tests and harnesses are never ordering-audited
        assert!(!classify("crates/engine/tests/cache.rs").ordering);
        assert!(!classify("crates/bench/src/lib.rs").ordering);
        // the facade list is exact: members in, neighbours out
        for rel in SYNC_FACADE_MODULES {
            assert!(classify(rel).sync_facade, "{rel} must be facade-linted");
            assert!(classify(rel).library, "{rel} must be library code");
        }
        assert!(!classify("crates/engine/src/engine.rs").sync_facade);
        assert!(!classify("crates/engine/src/registry.rs").sync_facade);
        assert!(!classify("crates/check/src/sync_impl.rs").sync_facade);
    }
}
