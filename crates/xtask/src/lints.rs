//! The four lint passes and the waiver grammar.
//!
//! Every lint reports hard violations; a line can opt out with an explicit
//! waiver comment naming the lint and a reason:
//!
//! ```text
//! let stack = vec![root]; // lint: allow(alloc, cold path: built once per tree)
//! ```
//!
//! The waiver may sit on the offending line or on a comment-only line
//! immediately above it. A waiver without a reason is itself a violation —
//! the point is an auditable registry of every exception.

use crate::scan::{contains_word, Scanned};
use crate::FileClass;

/// Which lint produced a violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lint {
    /// Heap allocation in a designated hot module.
    Alloc,
    /// `unwrap`/`expect`/`panic!`/`todo!` in library code.
    Panic,
    /// `==`/`!=` on floating-point expressions.
    FloatCmp,
    /// `unsafe` without an adjacent `// SAFETY:` comment.
    Safety,
    /// An explicit atomic memory ordering without an adjacent
    /// `// ordering:` justification.
    Ordering,
    /// Raw `std::sync` in a module that must go through the
    /// `mbt_check::sync` facade.
    Sync,
}

impl Lint {
    /// The name accepted by `lint: allow(<name>, reason)`.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Lint::Alloc => "alloc",
            Lint::Panic => "panic",
            Lint::FloatCmp => "float_cmp",
            Lint::Safety => "safety",
            Lint::Ordering => "ordering",
            Lint::Sync => "sync",
        }
    }
}

/// One lint violation, pointing at a source line.
#[derive(Debug)]
pub struct Violation {
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    pub lint: Lint,
    pub message: String,
}

/// Parses a waiver out of a comment line: `lint: allow(name, reason)`.
/// Returns `(name, reason_present)`.
fn waiver_in(comment: &str) -> Option<(String, bool)> {
    let pos = comment.find("lint: allow(")?;
    let rest = &comment[pos + "lint: allow(".len()..];
    let close = rest.find(')')?;
    let inner = &rest[..close];
    match inner.split_once(',') {
        Some((name, reason)) => Some((name.trim().to_string(), !reason.trim().is_empty())),
        None => Some((inner.trim().to_string(), false)),
    }
}

/// Whether line `i` (0-based) of `s` carries a valid waiver for `lint` —
/// on the line itself or on a comment-only line directly above.
fn waived(s: &Scanned, i: usize, lint: Lint, out: &mut Vec<Violation>, path: &str) -> bool {
    let mut candidates = [i, i];
    // a comment-only line directly above also covers this line
    if i > 0 && s.lines[i - 1].code.trim().is_empty() {
        candidates[1] = i - 1;
    }
    for j in candidates {
        if let Some((name, has_reason)) = waiver_in(&s.lines[j].comment) {
            if name == lint.name() {
                if has_reason {
                    return true;
                }
                out.push(Violation {
                    path: path.to_string(),
                    line: j + 1,
                    lint,
                    message: format!(
                        "waiver for `{name}` is missing a reason: use `lint: allow({name}, why)`"
                    ),
                });
                return true; // don't double-report the underlying violation
            }
        }
    }
    false
}

/// Allocation constructs banned from hot modules.
const ALLOC_PATTERNS: &[(&str, &str)] = &[
    ("Vec::new", "`Vec::new` allocates on first push"),
    ("vec!", "`vec![]` heap-allocates"),
    (".to_vec()", "`.to_vec()` copies into a fresh allocation"),
    (".clone()", "`.clone()` typically heap-allocates"),
    ("Box::new", "`Box::new` heap-allocates"),
    (".collect()", "`.collect()` builds a fresh container"),
    (".collect::<", "`.collect()` builds a fresh container"),
];

/// Panicking constructs banned from library code.
const PANIC_PATTERNS: &[(&str, &str)] = &[
    (".unwrap()", "`.unwrap()` panics on None/Err"),
    (".expect(", "`.expect()` panics on None/Err"),
    ("panic!", "`panic!` in library code"),
    ("todo!", "`todo!` in library code"),
    ("unimplemented!", "`unimplemented!` in library code"),
];

/// Whether the pattern occurrence at `pos` is a real token match (macro
/// names must not be suffixes of longer identifiers).
fn clean_match(code: &str, pat: &str, pos: usize) -> bool {
    if !pat.starts_with('.') && !pat.starts_with(char::is_uppercase) {
        // macro-style pattern: require a non-identifier char before
        if pos > 0 {
            let prev = code.as_bytes()[pos - 1] as char;
            if prev.is_alphanumeric() || prev == '_' {
                return false;
            }
        }
    }
    true
}

/// Lint (a): no allocation in hot modules.
fn lint_alloc(path: &str, s: &Scanned, out: &mut Vec<Violation>) {
    for (i, line) in s.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for &(pat, why) in ALLOC_PATTERNS {
            if let Some(pos) = line.code.find(pat) {
                if !clean_match(&line.code, pat, pos) {
                    continue;
                }
                if waived(s, i, Lint::Alloc, out, path) {
                    break; // one waiver covers the whole line
                }
                out.push(Violation {
                    path: path.to_string(),
                    line: i + 1,
                    lint: Lint::Alloc,
                    message: format!("allocation in hot module: {why}"),
                });
                break;
            }
        }
    }
}

/// Lint (b): no panicking constructs in library code.
fn lint_panic(path: &str, s: &Scanned, out: &mut Vec<Violation>) {
    for (i, line) in s.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for &(pat, why) in PANIC_PATTERNS {
            if let Some(pos) = line.code.find(pat) {
                if !clean_match(&line.code, pat, pos) {
                    continue;
                }
                if waived(s, i, Lint::Panic, out, path) {
                    break;
                }
                out.push(Violation {
                    path: path.to_string(),
                    line: i + 1,
                    lint: Lint::Panic,
                    message: why.to_string(),
                });
                break;
            }
        }
    }
}

/// Whether a comparison operand token looks floating-point: contains a
/// float literal (`1.0`, `1e-9`, `1f64`) or an `f32`/`f64` path.
fn floatish(token: &str) -> bool {
    if token.contains("f64") || token.contains("f32") {
        return true;
    }
    let b: Vec<char> = token.chars().collect();
    for i in 0..b.len() {
        if !b[i].is_ascii_digit() {
            continue;
        }
        // mantissa must start a numeric token, not continue an identifier
        if i > 0 && (b[i - 1].is_alphanumeric() || b[i - 1] == '_' || b[i - 1] == '.') {
            continue;
        }
        let mut j = i;
        while j < b.len() && b[j].is_ascii_digit() {
            j += 1;
        }
        if j < b.len() && b[j] == '.' {
            // `1.` or `1.5` — but not `1..3` (range) or tuple-ish `x.0`
            if j + 1 >= b.len() || b[j + 1].is_ascii_digit() || b[j + 1] == ' ' {
                return true;
            }
        }
        if j < b.len() && (b[j] == 'e' || b[j] == 'E') {
            let mut k = j + 1;
            if k < b.len() && (b[k] == '+' || b[k] == '-') {
                k += 1;
            }
            if k < b.len() && b[k].is_ascii_digit() {
                return true;
            }
        }
    }
    false
}

/// The operand token to the left/right of an operator position.
fn operand(code: &str, op_start: usize, op_len: usize, left: bool) -> String {
    let chars: Vec<char> = code.chars().collect();
    let mut tok = String::new();
    if left {
        let mut i = op_start;
        while i > 0 && chars[i - 1] == ' ' {
            i -= 1;
        }
        while i > 0 {
            let c = chars[i - 1];
            // keep an exponent sign (`1e-3`) attached to its mantissa
            let sign_ok = (c == '-' || c == '+')
                && i >= 2
                && matches!(chars[i - 2], 'e' | 'E')
                && tok.starts_with(|ch: char| ch.is_ascii_digit());
            if c.is_alphanumeric() || c == '_' || c == '.' || c == ':' || sign_ok {
                tok.insert(0, c);
                i -= 1;
            } else {
                break;
            }
        }
    } else {
        let mut i = op_start + op_len;
        while i < chars.len() && chars[i] == ' ' {
            i += 1;
        }
        while i < chars.len() {
            let c = chars[i];
            // sign chars belong to the token only as a leading unary minus
            // or a scientific-notation exponent (`1e-3`)
            let sign_ok = (c == '-' || c == '+')
                && (tok.is_empty() || tok.ends_with('e') || tok.ends_with('E'));
            if c.is_alphanumeric() || c == '_' || c == '.' || c == ':' || sign_ok {
                tok.push(c);
                i += 1;
            } else {
                break;
            }
        }
    }
    tok
}

/// Lint (c): no `==`/`!=` on float expressions outside tests.
fn lint_float_cmp(path: &str, s: &Scanned, out: &mut Vec<Violation>) {
    for (i, line) in s.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = &line.code;
        let bytes = code.as_bytes();
        let mut reported = false;
        for pos in 0..bytes.len().saturating_sub(1) {
            if reported {
                break;
            }
            let two = &code[pos..pos + 2];
            let is_eq = two == "==";
            let is_ne = two == "!=";
            if !is_eq && !is_ne {
                continue;
            }
            // skip `<=`, `>=`, `===`-ish runs and `=>`/`!==` artifacts
            if pos > 0 && matches!(bytes[pos - 1], b'=' | b'<' | b'>' | b'!') {
                continue;
            }
            if pos + 2 < bytes.len() && bytes[pos + 2] == b'=' {
                continue;
            }
            let lhs = operand(code, pos, 2, true);
            let rhs = operand(code, pos, 2, false);
            if floatish(&lhs) || floatish(&rhs) {
                if waived(s, i, Lint::FloatCmp, out, path) {
                    break;
                }
                out.push(Violation {
                    path: path.to_string(),
                    line: i + 1,
                    lint: Lint::FloatCmp,
                    message: format!(
                        "exact float comparison `{} {} {}` — compare against a tolerance \
                         or waive with a reason",
                        if lhs.is_empty() { "…" } else { &lhs },
                        two,
                        if rhs.is_empty() { "…" } else { &rhs },
                    ),
                });
                reported = true;
            }
        }
    }
}

/// Lint (d): every `unsafe` token needs a `SAFETY:` comment on the same
/// line or within the three lines above.
fn lint_safety(path: &str, s: &Scanned, out: &mut Vec<Violation>) {
    for (i, line) in s.lines.iter().enumerate() {
        if !contains_word(&line.code, "unsafe") {
            continue;
        }
        let documented = (i.saturating_sub(3)..=i).any(|j| s.lines[j].comment.contains("SAFETY:"));
        if documented || waived(s, i, Lint::Safety, out, path) {
            continue;
        }
        out.push(Violation {
            path: path.to_string(),
            line: i + 1,
            lint: Lint::Safety,
            message: "`unsafe` without an adjacent `// SAFETY:` comment".to_string(),
        });
    }
}

/// The five atomic orderings; `std::cmp::Ordering` variants never
/// collide with these names.
const ATOMIC_ORDERINGS: &[&str] = &[
    "Ordering::Relaxed",
    "Ordering::Acquire",
    "Ordering::Release",
    "Ordering::AcqRel",
    "Ordering::SeqCst",
];

/// Lint (e): every explicit atomic ordering needs an `// ordering:`
/// justification on the same line or in the comment block directly
/// above — the `unsafe`/`SAFETY:` rule, adapted for justifications that
/// run long. The point is a reviewable registry of why each ordering is
/// sufficient, kept honest by the mbt-check model suite.
fn lint_ordering(path: &str, s: &Scanned, out: &mut Vec<Violation>) {
    for (i, line) in s.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let Some(pat) = ATOMIC_ORDERINGS.iter().find(|p| line.code.contains(**p)) else {
            continue;
        };
        // Same-line, or in the comment block directly above. Unlike the
        // `SAFETY:` rule's flat 3-line window, justifications routinely
        // run long and orderings sit mid-wrapped-statement, so we walk
        // upward: through at most 3 statement-continuation code lines,
        // then through a contiguous comment block. A blank line ends the
        // search — the justification must be adjacent.
        let mut documented = line.comment.contains("ordering:");
        let mut code_budget = 3usize;
        let mut j = i;
        while !documented && j > 0 {
            j -= 1;
            let above = &s.lines[j];
            let is_code = !above.code.trim().is_empty();
            if !is_code && above.comment.is_empty() {
                break; // blank line: the block above is not adjacent
            }
            documented = above.comment.contains("ordering:");
            if is_code {
                if code_budget == 0 {
                    break;
                }
                code_budget -= 1;
            } else {
                // once inside the comment block, code above it ends it
                code_budget = 0;
            }
        }
        if documented || waived(s, i, Lint::Ordering, out, path) {
            continue;
        }
        out.push(Violation {
            path: path.to_string(),
            line: i + 1,
            lint: Lint::Ordering,
            message: format!(
                "`{pat}` without an adjacent `// ordering: <why this suffices>` justification"
            ),
        });
    }
}

/// Lint (f): facade modules must not reach `std::sync` directly — the
/// model checker can only explore code whose primitives come from
/// `mbt_check::sync`, so a raw `std::sync` import here silently removes
/// the code from every model run.
fn lint_sync(path: &str, s: &Scanned, out: &mut Vec<Violation>) {
    for (i, line) in s.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        if !line.code.contains("std::sync") {
            continue;
        }
        if waived(s, i, Lint::Sync, out, path) {
            continue;
        }
        out.push(Violation {
            path: path.to_string(),
            line: i + 1,
            lint: Lint::Sync,
            message: "raw `std::sync` in a facade module: use `mbt_check::sync` so                       model-checker builds instrument this code"
                .to_string(),
        });
    }
}

/// Runs every lint applicable to a file of the given class.
#[must_use]
pub fn lint_scanned(class: &FileClass, path: &str, s: &Scanned) -> Vec<Violation> {
    let mut out = Vec::new();
    if class.hot {
        lint_alloc(path, s, &mut out);
    }
    if class.library {
        lint_panic(path, s, &mut out);
        lint_float_cmp(path, s, &mut out);
    }
    if class.ordering {
        lint_ordering(path, s, &mut out);
    }
    if class.sync_facade {
        lint_sync(path, s, &mut out);
    }
    // unsafe hygiene applies to every file, tests and shims included
    lint_safety(path, s, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waiver_grammar() {
        assert_eq!(
            waiver_in("// lint: allow(alloc, cold path)"),
            Some(("alloc".to_string(), true))
        );
        assert_eq!(
            waiver_in("// lint: allow(panic)"),
            Some(("panic".to_string(), false))
        );
        assert_eq!(waiver_in("// plain comment"), None);
    }

    #[test]
    fn floatish_tokens() {
        assert!(floatish("0.0"));
        assert!(floatish("1e-9"));
        assert!(floatish("f64::INFINITY"));
        assert!(floatish("1.5f32"));
        assert!(floatish("x_f64"));
        assert!(!floatish("keyed.0"));
        assert!(!floatish("base64"));
        assert!(!floatish("code"));
        assert!(!floatish("i32"));
        assert!(!floatish("0x1e3")); // hex literal, not scientific
    }

    #[test]
    fn operand_extraction() {
        let code = "if self.x.distance(o) == 0.0 && y != 1e-3 {";
        let pos = code.find("==").unwrap();
        assert_eq!(operand(code, pos, 2, false), "0.0");
        let pos2 = code.find("!=").unwrap();
        assert_eq!(operand(code, pos2, 2, true), "y");
        assert_eq!(operand(code, pos2, 2, false), "1e-3");
    }
}
