//! `cargo xtask <command>` — workspace automation entry point.
//!
//! Commands:
//!
//! * `lint` — run the invariant lints over every workspace source file;
//!   exits non-zero when any violation is found. `--root <dir>` overrides
//!   the workspace root (defaults to the directory containing the
//!   workspace `Cargo.toml`, resolved from `CARGO_MANIFEST_DIR`).

use std::path::PathBuf;
use std::process::ExitCode;

use xtask::{run_lints, Violation};

fn workspace_root() -> PathBuf {
    // crates/xtask → workspace root is two levels up
    let manifest = std::env::var("CARGO_MANIFEST_DIR").unwrap_or_else(|_| ".".to_string());
    let mut root = PathBuf::from(manifest);
    root.pop();
    root.pop();
    if root.as_os_str().is_empty() {
        PathBuf::from(".")
    } else {
        root
    }
}

fn print_report(violations: &[Violation]) {
    for v in violations {
        eprintln!("{}:{}: [{}] {}", v.path, v.line, v.lint.name(), v.message);
    }
    let mut counts = std::collections::BTreeMap::new();
    for v in violations {
        *counts.entry(v.lint.name()).or_insert(0usize) += 1;
    }
    let summary: Vec<String> = counts.iter().map(|(k, n)| format!("{n} {k}")).collect();
    eprintln!(
        "\nxtask lint: {} violation(s) ({})",
        violations.len(),
        summary.join(", ")
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root = workspace_root();
    let mut command = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" if i + 1 < args.len() => {
                root = PathBuf::from(&args[i + 1]);
                i += 2;
            }
            "--help" | "-h" => {
                eprintln!("usage: cargo xtask lint [--root <dir>]");
                return ExitCode::SUCCESS;
            }
            c if command.is_none() => {
                command = Some(c.to_string());
                i += 1;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    match command.as_deref() {
        Some("lint") => match run_lints(&root) {
            Ok(violations) if violations.is_empty() => {
                eprintln!("xtask lint: clean ({})", root.display());
                ExitCode::SUCCESS
            }
            Ok(violations) => {
                print_report(&violations);
                ExitCode::FAILURE
            }
            Err(e) => {
                eprintln!("xtask lint: I/O error: {e}");
                ExitCode::FAILURE
            }
        },
        Some(other) => {
            eprintln!("unknown command `{other}`; try `cargo xtask lint`");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo xtask lint [--root <dir>]");
            ExitCode::FAILURE
        }
    }
}
