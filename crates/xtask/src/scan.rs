//! Lightweight Rust source scanner for the lint passes.
//!
//! A full parse is deliberately avoided — the lints are line-oriented and
//! must keep working through any refactor, so the scanner only needs to
//! answer three questions reliably:
//!
//! 1. which characters are *code* (comments and literal contents blanked
//!    out, so `".unwrap()"` inside a string never trips a lint),
//! 2. what *comment text* accompanies each line (waivers and `SAFETY:`
//!    annotations live there),
//! 3. which lines belong to `#[cfg(test)]` items (test code is exempt
//!    from the allocation / panic / float-compare lints).
//!
//! The state machine understands line comments, nested block comments,
//! string/char literals, raw strings (`r#"…"#`, any hash depth, `b`
//! prefixes), and distinguishes lifetimes from char literals.

/// One scanned source line.
#[derive(Debug)]
pub struct Line {
    /// Source text with comment characters and string/char literal
    /// contents replaced by spaces (delimiters kept, lengths preserved).
    pub code: String,
    /// The comment text carried by this line (empty when none).
    pub comment: String,
    /// Whether this line lies inside a `#[cfg(test)]` item.
    pub in_test: bool,
}

/// A whole file, split into scanned lines (1-based indexing via `lines[i]`
/// ↔ source line `i + 1`).
#[derive(Debug)]
pub struct Scanned {
    pub lines: Vec<Line>,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

/// Splits `source` into parallel code / comment streams.
fn separate(source: &str) -> (String, String) {
    let b: Vec<char> = source.chars().collect();
    let n = b.len();
    let mut code = String::with_capacity(n);
    let mut comment = String::with_capacity(n);
    let mut state = State::Code;
    let mut i = 0usize;

    // push one char to `code`, a space to `comment` (newlines go to both)
    macro_rules! emit_code {
        ($c:expr) => {{
            code.push($c);
            comment.push(if $c == '\n' { '\n' } else { ' ' });
        }};
    }
    macro_rules! emit_comment {
        ($c:expr) => {{
            comment.push($c);
            code.push(if $c == '\n' { '\n' } else { ' ' });
        }};
    }

    while i < n {
        let c = b[i];
        match state {
            State::Code => {
                if c == '/' && i + 1 < n && b[i + 1] == '/' {
                    state = State::LineComment;
                    emit_comment!('/');
                    emit_comment!('/');
                    i += 2;
                } else if c == '/' && i + 1 < n && b[i + 1] == '*' {
                    state = State::BlockComment(1);
                    emit_comment!('/');
                    emit_comment!('*');
                    i += 2;
                } else if c == '"' {
                    state = State::Str;
                    emit_code!('"');
                    i += 1;
                } else if (c == 'r' || c == 'b')
                    && (i == 0 || !is_ident(b[i - 1]))
                    && raw_str_hashes(&b, i).is_some()
                {
                    let (hashes, skip) = raw_str_hashes(&b, i).unwrap_or((0, 1));
                    for k in 0..skip {
                        emit_code!(b[i + k]);
                    }
                    i += skip;
                    state = State::RawStr(hashes);
                } else if c == '\'' {
                    // char literal vs lifetime: a literal closes within a
                    // couple of chars or starts with an escape
                    let is_char =
                        i + 1 < n && (b[i + 1] == '\\' || (i + 2 < n && b[i + 2] == '\''));
                    emit_code!('\'');
                    i += 1;
                    if is_char {
                        state = State::Char;
                    }
                } else {
                    emit_code!(c);
                    i += 1;
                }
            }
            State::LineComment => {
                if c == '\n' {
                    state = State::Code;
                    code.push('\n');
                    comment.push('\n');
                } else {
                    emit_comment!(c);
                }
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '/' && i + 1 < n && b[i + 1] == '*' {
                    state = State::BlockComment(depth + 1);
                    emit_comment!('/');
                    emit_comment!('*');
                    i += 2;
                } else if c == '*' && i + 1 < n && b[i + 1] == '/' {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    emit_comment!('*');
                    emit_comment!('/');
                    i += 2;
                } else {
                    emit_comment!(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' && i + 1 < n {
                    emit_code!(' ');
                    emit_code!(' ');
                    i += 2;
                } else if c == '"' {
                    emit_code!('"');
                    state = State::Code;
                    i += 1;
                } else {
                    emit_code!(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && closes_raw(&b, i, hashes) {
                    emit_code!('"');
                    i += 1;
                    for _ in 0..hashes {
                        emit_code!('#');
                        i += 1;
                    }
                    state = State::Code;
                } else {
                    emit_code!(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            State::Char => {
                if c == '\\' && i + 1 < n {
                    emit_code!(' ');
                    emit_code!(' ');
                    i += 2;
                } else if c == '\'' {
                    emit_code!('\'');
                    state = State::Code;
                    i += 1;
                } else {
                    emit_code!(' ');
                    i += 1;
                }
            }
        }
    }
    (code, comment)
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// At `b[i]` (an `r` or `b`), detects a raw-string opener `r#*"` /
/// `br#*"`; returns (hash count, chars consumed through the quote).
fn raw_str_hashes(b: &[char], i: usize) -> Option<(u32, usize)> {
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
        if j >= b.len() || b[j] != 'r' {
            return None;
        }
    }
    if b[j] != 'r' {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while j < b.len() && b[j] == '#' {
        hashes += 1;
        j += 1;
    }
    if j < b.len() && b[j] == '"' {
        Some((hashes, j - i + 1))
    } else {
        None
    }
}

/// Whether the quote at `b[i]` is followed by `hashes` `#`s.
fn closes_raw(b: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| b.get(i + k) == Some(&'#'))
}

/// Whether `needle` occurs in `hay` as a standalone word.
#[must_use]
pub fn contains_word(hay: &str, needle: &str) -> bool {
    let hb = hay.as_bytes();
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle) {
        let s = from + pos;
        let e = s + needle.len();
        let left_ok = s == 0 || !is_ident(hb[s - 1] as char);
        let right_ok = e >= hb.len() || !is_ident(hb[e] as char);
        if left_ok && right_ok {
            return true;
        }
        from = s + 1;
    }
    false
}

/// Char ranges (byte offsets into the code stream) covered by
/// `#[cfg(test)]` items: from the attribute to the end of the annotated
/// item (matching `}` of its body, or the terminating `;`).
fn test_ranges(code: &str) -> Vec<(usize, usize)> {
    let b: Vec<char> = code.chars().collect();
    let n = b.len();
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < n {
        if b[i] != '#' {
            i += 1;
            continue;
        }
        let start = i;
        let mut j = i + 1;
        if j < n && b[j] == '!' {
            j += 1;
        }
        if j >= n || b[j] != '[' {
            i += 1;
            continue;
        }
        // capture the attribute body up to its matching `]`
        let mut depth = 0i32;
        let attr_start = j;
        let mut attr_end = None;
        while j < n {
            match b[j] {
                '[' => depth += 1,
                ']' => {
                    depth -= 1;
                    if depth == 0 {
                        attr_end = Some(j);
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let Some(attr_end) = attr_end else { break };
        let attr: String = b[attr_start..=attr_end].iter().collect();
        let is_test_cfg = attr.contains("cfg") && contains_word(&attr, "test");
        if !is_test_cfg {
            i = attr_end + 1;
            continue;
        }
        // skip whitespace and any further attributes, then consume the item
        let mut k = attr_end + 1;
        loop {
            while k < n && b[k].is_whitespace() {
                k += 1;
            }
            if k < n && b[k] == '#' {
                // another attribute: skip to its `]`
                let mut d = 0i32;
                while k < n {
                    match b[k] {
                        '[' => d += 1,
                        ']' => {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                k += 1;
            } else {
                break;
            }
        }
        // item body: ends at the matching `}` of the first top-level brace
        // block, or at a `;` reached before any brace opens
        let mut brace = 0i32;
        let mut paren = 0i32;
        let mut end = n.saturating_sub(1);
        while k < n {
            match b[k] {
                '{' => brace += 1,
                '}' => {
                    brace -= 1;
                    if brace == 0 {
                        end = k;
                        break;
                    }
                }
                '(' | '[' => paren += 1,
                ')' | ']' => paren -= 1,
                ';' if brace == 0 && paren == 0 => {
                    end = k;
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        ranges.push((start, end));
        i = end + 1;
    }
    ranges
}

/// Scans a whole source file.
#[must_use]
pub fn scan(source: &str) -> Scanned {
    let (code, comment) = separate(source);
    let ranges = test_ranges(&code);

    // char offset of each line start in the (equal-length) streams
    let mut lines = Vec::new();
    let mut offset = 0usize;
    let code_lines: Vec<&str> = code.split('\n').collect();
    let comment_lines: Vec<&str> = comment.split('\n').collect();
    for (cl, ml) in code_lines.iter().zip(&comment_lines) {
        let len = cl.chars().count();
        let (s, e) = (offset, offset + len);
        let in_test = ranges.iter().any(|&(rs, re)| rs <= e && s <= re);
        lines.push(Line {
            code: (*cl).to_string(),
            comment: (*ml).to_string(),
            in_test,
        });
        offset = e + 1; // + the newline
    }
    Scanned { lines }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let src = "let x = \"a.unwrap()\"; // call .unwrap() later\nlet y = 1;\n";
        let s = scan(src);
        assert!(!s.lines[0].code.contains("unwrap"));
        assert!(s.lines[0].comment.contains(".unwrap()"));
        assert_eq!(s.lines[1].code, "let y = 1;");
    }

    #[test]
    fn raw_strings_and_chars() {
        let src = "let p = r#\"panic!(\"x\")\"#;\nlet c = '\"';\nlet l: &'static str = \"\";\n";
        let s = scan(src);
        assert!(!s.lines[0].code.contains("panic"));
        assert!(s.lines[1].code.contains("let c ="));
        assert!(s.lines[2].code.contains("'static"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ let z = 3;\n";
        let s = scan(src);
        assert!(s.lines[0].code.contains("let z = 3;"));
        assert!(!s.lines[0].code.contains("outer"));
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn tail() {}\n";
        let s = scan(src);
        assert!(!s.lines[0].in_test);
        assert!(s.lines[1].in_test);
        assert!(s.lines[2].in_test);
        assert!(s.lines[3].in_test);
        assert!(s.lines[4].in_test);
        assert!(!s.lines[5].in_test);
    }

    #[test]
    fn cfg_test_on_single_item() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn live() {}\n";
        let s = scan(src);
        assert!(s.lines[1].in_test);
        assert!(!s.lines[2].in_test);
    }

    #[test]
    fn cfg_feature_is_not_test() {
        let src = "#[cfg(feature = \"validate\")]\nfn checked() {}\n";
        let s = scan(src);
        assert!(!s.lines[1].in_test);
    }

    #[test]
    fn word_boundaries() {
        assert!(contains_word("unsafe { }", "unsafe"));
        assert!(!contains_word("unsafe_op_in_unsafe_fn", "unsafe"));
        assert!(contains_word("cfg(all(test, feature))", "test"));
        assert!(!contains_word("latest", "test"));
    }
}
