//! Fixture-driven acceptance tests for the lint engine: every `*_fail.rs`
//! snippet must produce exactly the violations marked in its source, and
//! every `*_pass.rs` snippet must lint clean. The fixtures live in
//! `crates/xtask/fixtures/`, which the workspace walker skips, so they
//! never leak into a real `cargo xtask lint` run.

use xtask::{classify, lint_source, FileClass, Lint, Violation};

fn fixture(name: &str) -> String {
    let path = format!("{}/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// Hot library file: all four lints apply.
fn hot_class() -> FileClass {
    FileClass {
        hot: true,
        library: true,
    }
}

/// Lines flagged for `lint` in the given violations.
fn lines_for(violations: &[Violation], lint: Lint) -> Vec<usize> {
    let mut lines: Vec<usize> = violations
        .iter()
        .filter(|v| v.lint == lint)
        .map(|v| v.line)
        .collect();
    lines.sort_unstable();
    lines
}

/// Lines carrying a `// violation` marker in the fixture source.
fn marked_lines(source: &str) -> Vec<usize> {
    source
        .lines()
        .enumerate()
        .filter(|(_, l)| l.contains("// violation"))
        .map(|(i, _)| i + 1)
        .collect()
}

#[test]
fn alloc_fail_fixture_flags_every_marked_line() {
    let src = fixture("alloc_fail.rs");
    let v = lint_source(&hot_class(), "alloc_fail.rs", &src);
    assert_eq!(lines_for(&v, Lint::Alloc), marked_lines(&src));
}

#[test]
fn alloc_pass_fixture_is_clean() {
    let src = fixture("alloc_pass.rs");
    let v = lint_source(&hot_class(), "alloc_pass.rs", &src);
    assert!(v.is_empty(), "unexpected violations: {v:?}");
}

#[test]
fn alloc_list_compiler_fixture_is_clean() {
    // the reuse-growth idiom of the interaction-list compiler and batch
    // kernels: with_capacity/resize/clear/push/extend are not allocations
    // the hot-path lint concerns itself with
    let src = fixture("alloc_list_compiler_pass.rs");
    let v = lint_source(&hot_class(), "alloc_list_compiler_pass.rs", &src);
    assert!(v.is_empty(), "unexpected violations: {v:?}");
}

#[test]
fn panic_fail_fixture_flags_every_marked_line() {
    let src = fixture("panic_fail.rs");
    let v = lint_source(&hot_class(), "panic_fail.rs", &src);
    let mut expected = marked_lines(&src);
    // the reasonless waiver line is flagged too (reason is mandatory)
    let waiver_line = src
        .lines()
        .position(|l| l.contains("allow(panic)"))
        .map(|i| i + 1)
        .expect("fixture must contain a reasonless waiver");
    expected.push(waiver_line);
    expected.sort_unstable();
    assert_eq!(lines_for(&v, Lint::Panic), expected);
}

#[test]
fn panic_pass_fixture_is_clean() {
    let src = fixture("panic_pass.rs");
    let v = lint_source(&hot_class(), "panic_pass.rs", &src);
    assert!(v.is_empty(), "unexpected violations: {v:?}");
}

#[test]
fn float_cmp_fail_fixture_flags_every_marked_line() {
    let src = fixture("float_cmp_fail.rs");
    let v = lint_source(&hot_class(), "float_cmp_fail.rs", &src);
    assert_eq!(lines_for(&v, Lint::FloatCmp), marked_lines(&src));
}

#[test]
fn float_cmp_pass_fixture_is_clean() {
    let src = fixture("float_cmp_pass.rs");
    let v = lint_source(&hot_class(), "float_cmp_pass.rs", &src);
    assert!(v.is_empty(), "unexpected violations: {v:?}");
}

#[test]
fn safety_fail_fixture_flags_every_unsafe_site() {
    let src = fixture("safety_fail.rs");
    // the safety lint applies to every file, even non-library ones
    let v = lint_source(&FileClass::default(), "safety_fail.rs", &src);
    let expected: Vec<usize> = src
        .lines()
        .enumerate()
        .filter(|(_, l)| l.contains("unsafe "))
        .map(|(i, _)| i + 1)
        .collect();
    assert_eq!(lines_for(&v, Lint::Safety), expected);
}

#[test]
fn safety_pass_fixture_is_clean() {
    let src = fixture("safety_pass.rs");
    let v = lint_source(&FileClass::default(), "safety_pass.rs", &src);
    assert!(v.is_empty(), "unexpected violations: {v:?}");
}

#[test]
fn non_hot_non_library_files_only_get_the_safety_lint() {
    // the alloc_fail fixture is full of allocations, but a bench harness
    // classification must not flag any of them
    let src = fixture("alloc_fail.rs");
    let class = classify("crates/bench/src/lib.rs");
    assert!(!class.hot && !class.library);
    let v = lint_source(&class, "crates/bench/src/lib.rs", &src);
    assert!(v.is_empty(), "harness code must not be alloc-linted: {v:?}");
}

#[test]
fn hot_module_classification_matches_the_issue_list() {
    for rel in xtask::HOT_MODULES {
        let class = classify(rel);
        assert!(class.hot && class.library, "{rel} must be hot library code");
    }
}
