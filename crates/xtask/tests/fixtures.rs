//! Fixture-driven acceptance tests for the lint engine: every `*_fail.rs`
//! snippet must produce exactly the violations marked in its source, and
//! every `*_pass.rs` snippet must lint clean. The fixtures live in
//! `crates/xtask/fixtures/`, which the workspace walker skips, so they
//! never leak into a real `cargo xtask lint` run.

use xtask::{classify, lint_source, FileClass, Lint, Violation};

fn fixture(name: &str) -> String {
    let path = format!("{}/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// Hot library file: every per-class lint applies.
fn hot_class() -> FileClass {
    FileClass {
        hot: true,
        library: true,
        ordering: true,
        sync_facade: true,
    }
}

/// Lines flagged for `lint` in the given violations.
fn lines_for(violations: &[Violation], lint: Lint) -> Vec<usize> {
    let mut lines: Vec<usize> = violations
        .iter()
        .filter(|v| v.lint == lint)
        .map(|v| v.line)
        .collect();
    lines.sort_unstable();
    lines
}

/// Lines carrying a `// violation` marker in the fixture source.
fn marked_lines(source: &str) -> Vec<usize> {
    source
        .lines()
        .enumerate()
        .filter(|(_, l)| l.contains("// violation"))
        .map(|(i, _)| i + 1)
        .collect()
}

#[test]
fn alloc_fail_fixture_flags_every_marked_line() {
    let src = fixture("alloc_fail.rs");
    let v = lint_source(&hot_class(), "alloc_fail.rs", &src);
    assert_eq!(lines_for(&v, Lint::Alloc), marked_lines(&src));
}

#[test]
fn alloc_pass_fixture_is_clean() {
    let src = fixture("alloc_pass.rs");
    let v = lint_source(&hot_class(), "alloc_pass.rs", &src);
    assert!(v.is_empty(), "unexpected violations: {v:?}");
}

#[test]
fn alloc_list_compiler_fixture_is_clean() {
    // the reuse-growth idiom of the interaction-list compiler and batch
    // kernels: with_capacity/resize/clear/push/extend are not allocations
    // the hot-path lint concerns itself with
    let src = fixture("alloc_list_compiler_pass.rs");
    let v = lint_source(&hot_class(), "alloc_list_compiler_pass.rs", &src);
    assert!(v.is_empty(), "unexpected violations: {v:?}");
}

#[test]
fn panic_fail_fixture_flags_every_marked_line() {
    let src = fixture("panic_fail.rs");
    let v = lint_source(&hot_class(), "panic_fail.rs", &src);
    let mut expected = marked_lines(&src);
    // the reasonless waiver line is flagged too (reason is mandatory)
    let waiver_line = src
        .lines()
        .position(|l| l.contains("allow(panic)"))
        .map(|i| i + 1)
        .expect("fixture must contain a reasonless waiver");
    expected.push(waiver_line);
    expected.sort_unstable();
    assert_eq!(lines_for(&v, Lint::Panic), expected);
}

#[test]
fn panic_pass_fixture_is_clean() {
    let src = fixture("panic_pass.rs");
    let v = lint_source(&hot_class(), "panic_pass.rs", &src);
    assert!(v.is_empty(), "unexpected violations: {v:?}");
}

#[test]
fn float_cmp_fail_fixture_flags_every_marked_line() {
    let src = fixture("float_cmp_fail.rs");
    let v = lint_source(&hot_class(), "float_cmp_fail.rs", &src);
    assert_eq!(lines_for(&v, Lint::FloatCmp), marked_lines(&src));
}

#[test]
fn float_cmp_pass_fixture_is_clean() {
    let src = fixture("float_cmp_pass.rs");
    let v = lint_source(&hot_class(), "float_cmp_pass.rs", &src);
    assert!(v.is_empty(), "unexpected violations: {v:?}");
}

#[test]
fn safety_fail_fixture_flags_every_unsafe_site() {
    let src = fixture("safety_fail.rs");
    // the safety lint applies to every file, even non-library ones
    let v = lint_source(&FileClass::default(), "safety_fail.rs", &src);
    let expected: Vec<usize> = src
        .lines()
        .enumerate()
        .filter(|(_, l)| l.contains("unsafe "))
        .map(|(i, _)| i + 1)
        .collect();
    assert_eq!(lines_for(&v, Lint::Safety), expected);
}

#[test]
fn safety_pass_fixture_is_clean() {
    let src = fixture("safety_pass.rs");
    let v = lint_source(&FileClass::default(), "safety_pass.rs", &src);
    assert!(v.is_empty(), "unexpected violations: {v:?}");
}

/// Library file under the ordering audit but outside the sync facade
/// (the common case: kernels with Relaxed counters).
fn ordering_class() -> FileClass {
    FileClass {
        library: true,
        ordering: true,
        ..FileClass::default()
    }
}

#[test]
fn ordering_fail_fixture_flags_every_marked_line() {
    let src = fixture("ordering_fail.rs");
    let v = lint_source(&ordering_class(), "ordering_fail.rs", &src);
    let mut expected = marked_lines(&src);
    // the reasonless waiver line is flagged too (reason is mandatory)
    let waiver_line = src
        .lines()
        .position(|l| l.contains("allow(ordering)"))
        .map(|i| i + 1)
        .expect("fixture must contain a reasonless waiver");
    expected.push(waiver_line);
    expected.sort_unstable();
    assert_eq!(lines_for(&v, Lint::Ordering), expected);
}

#[test]
fn ordering_pass_fixture_is_clean() {
    let src = fixture("ordering_pass.rs");
    let v = lint_source(&ordering_class(), "ordering_pass.rs", &src);
    assert!(v.is_empty(), "unexpected violations: {v:?}");
}

#[test]
fn ordering_lint_does_not_apply_to_test_or_checker_code() {
    // the same unjustified orderings are fine where the audit is off —
    // integration tests and the checker's own internals
    let src = fixture("ordering_fail.rs");
    for rel in [
        "crates/engine/tests/cache.rs",
        "crates/check/src/sync_impl.rs",
    ] {
        let class = classify(rel);
        let v = lint_source(&class, rel, &src);
        assert!(
            lines_for(&v, Lint::Ordering).is_empty(),
            "{rel} must not be ordering-linted: {v:?}"
        );
    }
}

#[test]
fn sync_fail_fixture_flags_every_marked_line() {
    let src = fixture("sync_fail.rs");
    let v = lint_source(&hot_class(), "sync_fail.rs", &src);
    assert_eq!(lines_for(&v, Lint::Sync), marked_lines(&src));
}

#[test]
fn sync_pass_fixture_is_clean() {
    let src = fixture("sync_pass.rs");
    let v = lint_source(&hot_class(), "sync_pass.rs", &src);
    assert!(v.is_empty(), "unexpected violations: {v:?}");
}

#[test]
fn sync_lint_only_applies_to_facade_modules() {
    // raw std::sync is fine outside the facade list (e.g. the registry's
    // RwLock, which the facade deliberately does not provide)
    let src = fixture("sync_fail.rs");
    let class = classify("crates/engine/src/registry.rs");
    assert!(class.library && !class.sync_facade);
    let v = lint_source(&class, "crates/engine/src/registry.rs", &src);
    assert!(
        lines_for(&v, Lint::Sync).is_empty(),
        "non-facade code must not be sync-linted: {v:?}"
    );
}

#[test]
fn sync_facade_classification_matches_the_model_suite() {
    for rel in xtask::SYNC_FACADE_MODULES {
        let class = classify(rel);
        assert!(
            class.sync_facade && class.library,
            "{rel} must be facade library code"
        );
    }
}

#[test]
fn non_hot_non_library_files_only_get_the_safety_lint() {
    // the alloc_fail fixture is full of allocations, but a bench harness
    // classification must not flag any of them
    let src = fixture("alloc_fail.rs");
    let class = classify("crates/bench/src/lib.rs");
    assert!(!class.hot && !class.library);
    let v = lint_source(&class, "crates/bench/src/lib.rs", &src);
    assert!(v.is_empty(), "harness code must not be alloc-linted: {v:?}");
}

#[test]
fn hot_module_classification_matches_the_issue_list() {
    for rel in xtask::HOT_MODULES {
        let class = classify(rel);
        assert!(class.hot && class.library, "{rel} must be hot library code");
    }
}
