//! Boundary-element example: capacitance of conductors via the single-layer
//! integral equation, solved with GMRES(10) and the treecode matvec — the
//! paper's §"Solving Boundary Integral Equations" pipeline end to end.
//!
//! The unit sphere gives an analytic check (C = R in Gaussian units); the
//! synthetic gripper shows the same pipeline on a highly unstructured
//! industrial surface.
//!
//! Run with: `cargo run --release --example bem_capacitance`

use mbt::prelude::*;

fn solve(name: &str, mesh: TriMesh, expect: Option<f64>) {
    mesh.validate().expect("generated mesh must be valid");
    let geometry = SingleLayerGeometry::new(mesh, QuadRule::SixPoint);
    println!(
        "\n=== {name}: {} elements, {} nodes, {} Gauss points",
        geometry.mesh.num_elements(),
        geometry.dim(),
        geometry.num_gauss()
    );

    let operator = TreecodeSingleLayer::new(geometry.clone(), TreecodeParams::adaptive(4, 0.5));
    let t0 = std::time::Instant::now();
    let solution = CapacitanceProblem::new(&operator, &geometry).solve(&GmresOptions {
        restart: 10,
        tol: 1e-7,
        max_iters: 200,
        preconditioner: None,
    });
    let dt = t0.elapsed();

    println!(
        "GMRES(10): {:?} in {} matvecs, final residual {:.2e}, {:.2?}",
        solution.gmres.outcome, solution.gmres.iterations, solution.gmres.relative_residual, dt
    );
    println!("capacitance C = {:.4}", solution.capacitance);
    if let Some(c) = expect {
        let rel = (solution.capacitance - c).abs() / c;
        println!("analytic C = {c:.4} (off by {:.2}%)", rel * 100.0);
        assert!(rel < 0.05, "capacitance should be within 5%");
    }
    println!(
        "treecode matvec stats: {} targets, {} expansion interactions, {} terms",
        operator.stats().targets,
        operator.stats().pc_interactions,
        operator.stats().terms
    );
}

fn main() {
    solve("unit sphere", shapes::icosphere(3, 1.0), Some(1.0));
    solve("industrial gripper (synthetic)", shapes::gripper(10), None);
    solve("propeller (synthetic)", shapes::propeller(4, 24, 3), None);
}
