//! Error-analysis example: the paper's Theorems 1–3, observable.
//!
//! 1. Theorem 1 — the truncation error of a single multipole evaluation
//!    never exceeds `A/(r−a)·(a/r)^{p+1}`, and the bound's geometric decay
//!    in `p` is what you actually see.
//! 2. Theorem 2 — under the α-criterion, the per-interaction error grows
//!    linearly with the cluster charge `A` at fixed degree.
//! 3. Theorem 3 — the adaptive rule's degree choice equalises the error
//!    across clusters of very different weight.
//!
//! Run with: `cargo run --release --example error_analysis`

use mbt::prelude::*;
use rand::{Rng, SeedableRng};

fn cluster(center: Vec3, radius: f64, n: usize, magnitude: f64, seed: u64) -> Vec<Particle> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let v = loop {
                let v = Vec3::new(
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                );
                if v.norm_sq() <= 1.0 {
                    break v;
                }
            };
            Particle::new(center + v * radius, magnitude)
        })
        .collect()
}

fn direct(ps: &[Particle], x: Vec3) -> f64 {
    ps.iter().map(|p| p.charge / p.position.distance(x)).sum()
}

fn main() {
    // ---------- Theorem 1: bound vs observed error, sweep p -------------
    let a = 0.5;
    let ps = cluster(Vec3::ZERO, a, 200, 1.0, 3);
    let abs_charge: f64 = ps.iter().map(|p| p.charge.abs()).sum();
    let point = Vec3::new(1.2, 0.4, -0.3);
    let r = point.norm();
    let exact = direct(&ps, point);
    println!("Theorem 1: cluster A = {abs_charge}, a = {a}, r = {r:.3}");
    println!("{:>4} {:>14} {:>14}", "p", "observed", "bound");
    for p in [0usize, 2, 4, 6, 8, 10, 12] {
        let e = MultipoleExpansion::from_particles(Vec3::ZERO, p, &ps);
        let err = (e.potential_at(point) - exact).abs();
        let bound = theorem1_bound(abs_charge, a, r, p);
        assert!(err <= bound, "Theorem 1 violated at p = {p}");
        println!("{p:>4} {err:>14.3e} {bound:>14.3e}");
    }

    // ---------- Theorem 2: error linear in cluster charge ---------------
    println!("\nTheorem 2: fixed p = 4, error grows linearly with A");
    println!("{:>10} {:>14} {:>14}", "A", "observed", "bound");
    let p = 4;
    for scale in [1.0, 4.0, 16.0, 64.0] {
        let ps = cluster(Vec3::ZERO, a, 200, scale, 5);
        let abs_charge: f64 = ps.iter().map(|q| q.charge.abs()).sum();
        let e = MultipoleExpansion::from_particles(Vec3::ZERO, p, &ps);
        let err = (e.potential_at(point) - direct(&ps, point)).abs();
        let bound = theorem1_bound(abs_charge, a, r, p);
        println!("{abs_charge:>10.0} {err:>14.3e} {bound:>14.3e}");
    }

    // ---------- Theorem 3: adaptive degrees equalise the error ----------
    println!("\nTheorem 3: adaptive degree selection (α = 0.6, p_min = 3)");
    println!("{:>10} {:>4} {:>14}", "weight", "p", "w·κ^(p+1)");
    let selector = DegreeSelector::adaptive(3, 0.6);
    let k = kappa(0.6);
    for w in [1.0, 8.0, 64.0, 512.0, 4096.0] {
        let p = selector.degree_for(w, 1.0);
        let level = w * k.powi(p as i32 + 1);
        println!("{w:>10.0} {p:>4} {level:>14.3e}");
    }
    println!(
        "\nThe equalised column stays below the reference level 1·κ^4 = {:.3e},",
        k.powi(4)
    );
    println!("so every admitted interaction carries (at most) the same error.");
}
