//! Galaxy example: leapfrog integration of a self-gravitating Plummer
//! sphere using treecode accelerations — the astrophysics workload the
//! treecode literature (Barnes–Hut and its descendants) was built for.
//!
//! Built on the `mbt-sim` dynamics substrate: virial initial velocities,
//! kick–drift–kick leapfrog, exact softened energy diagnostics. A Plummer
//! sphere started in virial equilibrium should conserve energy and roughly
//! maintain its half-mass radius over a few dynamical times.
//!
//! Run with: `cargo run --release --example galaxy`

use mbt::prelude::*;

const SOFTENING: f64 = 0.05;

fn main() {
    let n = 4_000;
    let bodies = plummer(n, 1.0, 1.0, 123);

    let force = ForceModel::Treecode(
        TreecodeParams::adaptive(3, 0.5)
            .with_leaf_capacity(16)
            .with_softening(SOFTENING),
    );
    let mut sim = Simulation::new(bodies, force);
    sim.set_virial_velocities(7);

    let e0 = sim.total_energy();
    println!(
        "Plummer sphere: n = {n}, E₀ = {e0:.4} (K = {:.4}, W = {:.4}, virial 2K/|W| = {:.2})",
        sim.kinetic_energy(),
        sim.potential_energy(),
        sim.virial_ratio(),
    );
    println!(
        "\n{:>6} {:>12} {:>12} {:>12} {:>12}",
        "step", "energy", "ΔE/E₀", "r_half", "r_90"
    );

    let dt = 0.01;
    let steps = 100;
    for block in 0..=(steps / 20) {
        if block > 0 {
            sim.run(dt, 20);
        }
        let e = sim.total_energy();
        println!(
            "{:>6} {:>12.5} {:>12.2e} {:>12.4} {:>12.4}",
            sim.steps(),
            e,
            (e - e0).abs() / e0.abs(),
            sim.lagrangian_radius(0.5),
            sim.lagrangian_radius(0.9),
        );
    }

    let drift = (sim.total_energy() - e0).abs() / e0.abs();
    println!("\nenergy drift over {} steps: {drift:.2e}", sim.steps());
    assert!(drift < 0.05, "energy conservation violated: {drift}");
    println!("cluster evolved stably (treecode forces, adaptive degree).");
}
