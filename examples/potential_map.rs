//! Potential-map example: evaluate the treecode on a regular grid and
//! render an ASCII contour map of a mid-plane slice — a quick visual check
//! that the far field of a clustered charge system looks right.
//!
//! Run with: `cargo run --release --example potential_map`

use mbt::prelude::*;

fn main() {
    // two opposite-charged Gaussian blobs: a macroscopic dipole. The
    // negative blob is the exact mirror image of the positive one, so the
    // potential is exactly antisymmetric in x.
    let mut particles = gaussian(
        4_000,
        Vec3::new(-0.8, 0.0, 0.0),
        0.25,
        ChargeModel::UnitPositive { magnitude: 1.0 },
        3,
    );
    let mirrored: Vec<Particle> = particles
        .iter()
        .map(|p| {
            Particle::new(
                Vec3::new(-p.position.x, p.position.y, p.position.z),
                -p.charge,
            )
        })
        .collect();
    particles.extend(mirrored);

    let tc = Treecode::new(&particles, TreecodeParams::adaptive(4, 0.6)).unwrap();

    // sample the z = 0 plane
    let (nx, ny) = (72usize, 36usize);
    let (lx, ly) = (3.0, 1.5);
    let mut points = Vec::with_capacity(nx * ny);
    for j in 0..ny {
        for i in 0..nx {
            points.push(Vec3::new(
                -lx + 2.0 * lx * i as f64 / (nx - 1) as f64,
                -ly + 2.0 * ly * j as f64 / (ny - 1) as f64,
                0.0,
            ));
        }
    }
    let result = tc.potentials_at(&points);
    let max = result.values.iter().fold(0.0f64, |m, v| m.max(v.abs()));

    // symmetric log-ish shading
    let shades: &[u8] = b" .:-=+*#%@";
    println!("potential in the z = 0 plane (left blob +, right blob −):\n");
    for j in (0..ny).rev() {
        let mut pos_line = String::with_capacity(nx);
        for i in 0..nx {
            let v = result.values[j * nx + i];
            let t = (v.abs() / max).powf(0.4); // compress dynamic range
            let idx = ((t * (shades.len() - 1) as f64).round() as usize).min(shades.len() - 1);
            let ch = shades[idx] as char;
            // sign via case-ish: negative regions rendered in parentheses
            pos_line.push(if v < 0.0 && ch != ' ' { '(' } else { ch });
        }
        println!("{pos_line}");
    }
    println!(
        "\ngrid: {} evaluations via the adaptive treecode — {} expansion \
         interactions, {} terms, max degree {}",
        points.len(),
        result.stats.pc_interactions,
        result.stats.terms,
        result.stats.max_degree_used()
    );

    // physics sanity: antisymmetric along x through the midplane — the
    // grid is symmetric about x = 0, so compare mirrored columns
    let row = ny / 2;
    let (i, j) = (nx / 4, nx - 1 - nx / 4);
    let left = result.values[row * nx + i];
    let right = result.values[row * nx + j];
    assert!(
        (left + right).abs() < 0.02 * left.abs().max(right.abs()).max(1e-12),
        "dipole field should be antisymmetric: {left} vs {right}"
    );
    println!("antisymmetry check passed: Φ(−x) ≈ −Φ(x) across the midplane");
}
