//! Protein-electrostatics example: the paper's motivating application for
//! error control.
//!
//! "In applications such as protein simulations, the charge density is
//! largely uniform across the domain of simulation; therefore, the overall
//! error in the Barnes–Hut method grows linearly with the magnitude of
//! charge in the system."
//!
//! This example builds a coarse-grained "protein": overlapping Gaussian
//! blobs of partial charges (domains of the molecule), evaluates the
//! electrostatic potential with the original and the improved treecode at
//! several system sizes, and shows how the error of the fixed-degree
//! method deteriorates while the adaptive method holds steady.
//!
//! Run with: `cargo run --release --example protein_electrostatics`

use mbt::prelude::*;

fn main() {
    println!(
        "{:>8} {:>7} | {:>11} {:>13} | {:>11} {:>13} | {:>7}",
        "atoms", "domains", "err(orig)", "terms(orig)", "err(new)", "terms(new)", "ratio"
    );
    for (n, domains) in [(5_000, 4), (20_000, 8), (80_000, 16)] {
        // partial charges: ±0.4e-ish magnitudes, random sign (roughly
        // neutral overall, like a real protein)
        let particles = overlapped_gaussians(
            n,
            domains,
            3.0,
            0.8,
            ChargeModel::Uniform { lo: -0.8, hi: 0.8 },
            n as u64,
        );

        let orig = Treecode::new(&particles, TreecodeParams::fixed(4, 0.6)).unwrap();
        let r_orig = orig.potentials();
        let e_orig = sampled_relative_error(&particles, &r_orig.values, 250, 1);

        let new = Treecode::new(&particles, TreecodeParams::adaptive(4, 0.6)).unwrap();
        let r_new = new.potentials();
        let e_new = sampled_relative_error(&particles, &r_new.values, 250, 1);

        println!(
            "{:>8} {:>7} | {:>11.3e} {:>13} | {:>11.3e} {:>13} | {:>6.1}x",
            n,
            domains,
            e_orig.relative_l2,
            r_orig.stats.terms,
            e_new.relative_l2,
            r_new.stats.terms,
            e_orig.relative_l2 / e_new.relative_l2,
        );
    }
    println!("\nThe adaptive method keeps the interaction error equalised across");
    println!("cluster sizes (Theorem 3), so its accuracy advantage holds as the");
    println!("molecule grows, at a bounded extra cost (Theorem 4).");
}
