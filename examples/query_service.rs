//! Query service example: one engine, two tenants, many concurrent
//! callers at different accuracies.
//!
//! Models the serving scenario the engine exists for — a long-lived
//! process holding several charge systems, answering interleaved
//! potential/field queries from independent threads. Each `(dataset,
//! accuracy)` pair resolves to one cached plan: the first query builds
//! it, everything after hits cache, and concurrent callers against the
//! same plan are coalesced into shared evaluation sweeps.
//!
//! Run with: `cargo run --release --example query_service`

use std::time::Duration;

use mbt::prelude::*;

fn main() {
    let engine = Engine::new(EngineConfig::default()).expect("default config is valid");

    // two tenants: a structured unit-charge box and a clustered mixed-sign system
    let galaxy = engine
        .register("galaxy", plummer(8_000, 1.0, 1.0, 11))
        .expect("galaxy registers");
    let protein = engine
        .register(
            "protein",
            overlapped_gaussians(
                6_000,
                4,
                2.5,
                0.5,
                ChargeModel::RandomSign { magnitude: 1.0 },
                7,
            ),
        )
        .expect("protein registers");

    // each tenant's accuracy tiers — four distinct plans in total
    let tiers = [
        ("fast", Accuracy::Adaptive { p_min: 3 }),
        ("precise", Accuracy::Tolerance { tol: 1e-7 }),
    ];

    // warm the galaxy fast tier so at least one plan pre-exists
    engine
        .warm(galaxy, tiers[0].1)
        .expect("warming builds the plan");

    println!("serving 12 threads x 8 queries across 2 datasets x 2 accuracy tiers...\n");
    std::thread::scope(|s| {
        for t in 0..12 {
            let engine = &engine;
            let tiers = &tiers;
            s.spawn(move || {
                for round in 0..8 {
                    let (dataset, name) = if (t + round) % 2 == 0 {
                        (galaxy, "galaxy")
                    } else {
                        (protein, "protein")
                    };
                    let (tier_name, accuracy) = tiers[(t + round / 2) % 2];
                    let points: Vec<Vec3> = (0..64)
                        .map(|i| {
                            let u = (t * 100 + round * 10 + i) as f64;
                            Vec3::new(u.sin() * 2.0, (0.3 * u).cos() * 2.0, (0.7 * u).sin())
                        })
                        .collect();
                    let request = if round % 3 == 0 {
                        QueryRequest::fields(dataset, accuracy, points)
                    } else {
                        QueryRequest::potentials(dataset, accuracy, points)
                    }
                    .with_deadline(Duration::from_secs(30));
                    match engine.query(request) {
                        Ok(response) => {
                            if round == 0 {
                                println!(
                                    "thread {t:>2}: {name}/{tier_name} -> {:?} \
                                     ({} points, plan {} KiB)",
                                    response.cache,
                                    response.output.len(),
                                    response.plan_bytes / 1024,
                                );
                            }
                        }
                        Err(e) => println!("thread {t:>2}: {name}/{tier_name} -> error: {e}"),
                    }
                }
            });
        }
    });

    println!("\n{}", engine.stats());
}
