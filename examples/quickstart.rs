//! Quickstart: build both treecode flavours over a protein-like charge
//! system, compare their accuracy and cost against exact summation.
//!
//! Run with: `cargo run --release --example quickstart`

use mbt::prelude::*;

fn main() {
    // A "protein simulation"-like instance from the paper's motivation:
    // charge density largely uniform across the domain, unit-magnitude
    // charges of random sign.
    let n = 20_000;
    let particles = uniform_cube(n, 1.0, ChargeModel::RandomSign { magnitude: 1.0 }, 42);
    println!("system: {n} unit charges, uniform in a 2×2×2 cube\n");

    // --- original Barnes–Hut: one degree for every cluster ------------
    let fixed = Treecode::new(&particles, TreecodeParams::fixed(4, 0.6)).unwrap();
    let t0 = std::time::Instant::now();
    let r_fixed = fixed.potentials();
    let dt_fixed = t0.elapsed();
    let e_fixed = sampled_relative_error(&particles, &r_fixed.values, 300, 7);

    // --- the paper's improved method: adaptive degree ------------------
    let adaptive = Treecode::new(&particles, TreecodeParams::adaptive(4, 0.6)).unwrap();
    let t0 = std::time::Instant::now();
    let r_adaptive = adaptive.potentials();
    let dt_adaptive = t0.elapsed();
    let e_adaptive = sampled_relative_error(&particles, &r_adaptive.values, 300, 7);

    println!(
        "{:<22} {:>12} {:>14} {:>10}",
        "method", "rel. error", "terms", "time"
    );
    println!(
        "{:<22} {:>12.3e} {:>14} {:>9.0?}",
        "original (p = 4)", e_fixed.relative_l2, r_fixed.stats.terms, dt_fixed
    );
    println!(
        "{:<22} {:>12.3e} {:>14} {:>9.0?}",
        "improved (p_min = 4)", e_adaptive.relative_l2, r_adaptive.stats.terms, dt_adaptive
    );
    println!(
        "\nimproved method: {:.1}x lower error at {:.2}x the terms \
         (degrees used: up to {})",
        e_fixed.relative_l2 / e_adaptive.relative_l2,
        r_adaptive.stats.terms as f64 / r_fixed.stats.terms as f64,
        r_adaptive.stats.max_degree_used(),
    );

    // the degree ramp Theorem 3 prescribes, per tree level
    println!("\nper-level maximum expansion degree (root = level 0):");
    let tree = adaptive.tree();
    let mut per_level: Vec<usize> = vec![0; tree.height() + 1];
    for (i, node) in tree.nodes().iter().enumerate() {
        let l = node.level as usize;
        per_level[l] = per_level[l].max(adaptive.degrees()[i]);
    }
    for (l, p) in per_level.iter().enumerate() {
        println!("  level {l}: p = {p}");
    }
}
