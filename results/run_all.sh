#!/bin/bash
cd /root/repo
for bin in table1 fig2 table2 table3 bem_solve ablation fmm_compare; do
  echo "=== running $bin ==="
  ./target/release/$bin > results/$bin.txt 2>&1
  echo "=== $bin done (exit $?) ==="
done
echo ALL_HARNESSES_DONE
