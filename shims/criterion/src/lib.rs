//! Offline stand-in for the subset of the `criterion` API this workspace
//! uses (`benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Throughput`, `criterion_group!`, `criterion_main!`).
//!
//! Measurement model: after a short calibration pass, each benchmark runs
//! `sample_size` samples of a batch sized to take roughly
//! [`TARGET_SAMPLE_TIME`]; the **median** per-iteration time is reported,
//! plus throughput when the group declared one. Output is one line per
//! benchmark on stdout — there are no HTML reports or statistical
//! comparisons, but the numbers are stable enough to compare runs of the
//! same binary on the same machine.

#![forbid(unsafe_code)]

use std::fmt::{Display, Write as _};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(40);
const CALIBRATION_TIME: Duration = Duration::from_millis(10);

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 20,
            throughput: None,
        }
    }

    pub fn bench_function(&mut self, id: impl IntoBenchmarkId, f: impl FnMut(&mut Bencher)) {
        run_benchmark(&id.into_benchmark_id(), 20, None, f);
    }
}

/// Identifies one benchmark: a function name plus an optional parameter.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Conversion into [`BenchmarkId`] so `bench_function` accepts either an
/// id or a plain string, as upstream does.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            label: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

/// Units for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = BenchmarkId {
            label: format!("{}/{}", self.name, id.into_benchmark_id().label),
        };
        run_benchmark(&id, self.sample_size, self.throughput, f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

/// Passed to the measured closure; `iter` runs the workload.
pub struct Bencher {
    /// Iterations to run in the current sample.
    iters: u64,
    /// Time accumulated by the latest `iter` call.
    elapsed: Duration,
}

impl Bencher {
    // The name mirrors criterion's `Bencher::iter`; it runs the closure, it
    // does not return an iterator.
    #[allow(clippy::iter_not_returning_iterator)]
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark(
    id: &BenchmarkId,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    // calibration: find an iteration count filling the target sample time
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let calib_start = Instant::now();
    loop {
        f(&mut b);
        if b.elapsed >= CALIBRATION_TIME || calib_start.elapsed() > Duration::from_secs(2) {
            break;
        }
        b.iters = (b.iters * 2).min(1 << 40);
    }
    let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
    let iters_per_sample = if per_iter > 0.0 {
        ((TARGET_SAMPLE_TIME.as_secs_f64() / per_iter).ceil() as u64).max(1)
    } else {
        b.iters * 2
    };

    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    b.iters = iters_per_sample;
    for _ in 0..sample_size {
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / b.iters as f64);
    }
    samples.sort_by(f64::total_cmp);
    let median = samples[samples.len() / 2];
    let lo = samples[0];
    let hi = samples[samples.len() - 1];

    let mut line = format!(
        "{:<50} time: [{} {} {}]",
        id.label,
        format_time(lo),
        format_time(median),
        format_time(hi)
    );
    if let Some(t) = throughput {
        let (count, unit) = match t {
            Throughput::Elements(n) => (n as f64, "elem/s"),
            Throughput::Bytes(n) => (n as f64, "B/s"),
        };
        if median > 0.0 {
            let _ = write!(line, "  thrpt: {}", format_rate(count / median, unit));
        }
    }
    println!("{line}");
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn format_rate(rate: f64, unit: &str) -> String {
    if rate >= 1e9 {
        format!("{:.3} G{unit}", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.3} M{unit}", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.3} K{unit}", rate / 1e3)
    } else {
        format!("{rate:.1} {unit}")
    }
}

/// Mirrors `criterion::criterion_group!`: defines a function running every
/// listed target against a fresh `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Mirrors `criterion::criterion_main!`: the benchmark binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_as_function_slash_parameter() {
        assert_eq!(BenchmarkId::new("direct", 4000).label, "direct/4000");
        assert_eq!(BenchmarkId::from_parameter(7).label, "7");
    }

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        group.throughput(Throughput::Elements(10));
        let mut count = 0u64;
        group.bench_function(BenchmarkId::new("noop", 10), |b| {
            b.iter(|| {
                count += 1;
                count
            });
        });
        group.finish();
        assert!(count > 0);
    }
}
