//! Offline stand-in for the subset of the `proptest` API this workspace
//! uses: the `proptest!` macro with `#![proptest_config]`, range and tuple
//! strategies, `prop_map` / `prop_filter`, `prop::collection::vec`,
//! `prop::sample::select`, and the `prop_assert*` / `prop_assume!` macros.
//!
//! Semantics: each test runs `cases` random cases from a seed derived
//! deterministically from the test's module path and name, so failures
//! reproduce across runs. There is **no shrinking** — a failing case
//! panics with the generated inputs printed via `Debug`.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Debug;
use std::ops::Range;

pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy,
    };
}

/// Per-test configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    #[must_use]
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Why a generated case did not produce a pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected (`prop_assume!` or a filter) — resample.
    Reject,
    /// A `prop_assert*` failed — abort the test.
    Fail(String),
}

/// The RNG handed to strategies. Deterministic per test.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    #[must_use]
    pub fn from_name(name: &str) -> TestRng {
        // FNV-1a over the fully qualified test name
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h),
        }
    }

    fn rng(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}

/// A value generator. `generate` returns `None` when a filter rejects the
/// candidate; the runner resamples.
pub trait Strategy: Sized {
    type Value: Debug;

    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    fn prop_map<F, R>(self, f: F) -> MapStrategy<Self, F>
    where
        F: Fn(Self::Value) -> R,
        R: Debug,
    {
        MapStrategy { base: self, f }
    }

    fn prop_filter<W, F>(self, _whence: W, f: F) -> FilterStrategy<Self, F>
    where
        W: Into<String>,
        F: Fn(&Self::Value) -> bool,
    {
        FilterStrategy { base: self, f }
    }
}

pub struct MapStrategy<S, F> {
    base: S,
    f: F,
}

impl<S, F, R> Strategy for MapStrategy<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> R,
    R: Debug,
{
    type Value = R;

    fn generate(&self, rng: &mut TestRng) -> Option<R> {
        self.base.generate(rng).map(&self.f)
    }
}

pub struct FilterStrategy<S, F> {
    base: S,
    f: F,
}

impl<S, F> Strategy for FilterStrategy<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.base.generate(rng).filter(|v| (self.f)(v))
    }
}

// ----- primitive range strategies -----------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rng.rng().gen_range(self.clone()))
            }
        }
    )*};
}

impl_range_strategy!(f64, usize, u32, u64, i32, i64);

// ----- tuple strategies ----------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                let ($($s,)+) = self;
                $(let $v = $s.generate(rng)?;)+
                Some(($($v,)+))
            }
        }
    };
}

impl_tuple_strategy!(A / a);
impl_tuple_strategy!(A / a, B / b);
impl_tuple_strategy!(A / a, B / b, C / c);
impl_tuple_strategy!(A / a, B / b, C / c, D / d);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f);

// ----- collections ---------------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::fmt::Debug;
    use std::ops::Range;

    /// Length specifications accepted by [`vec`].
    pub trait IntoLenRange {
        fn bounds(self) -> (usize, usize); // [lo, hi) half-open
    }

    impl IntoLenRange for Range<usize> {
        fn bounds(self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    impl IntoLenRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self + 1)
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: impl IntoLenRange) -> VecStrategy<S> {
        let (lo, hi) = len.bounds();
        assert!(lo < hi, "empty length range");
        VecStrategy { element, lo, hi }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let len = if self.hi - self.lo == 1 {
                self.lo
            } else {
                rng.inner.gen_range(self.lo..self.hi)
            };
            let mut out = Vec::with_capacity(len);
            for _ in 0..len {
                out.push(self.element.generate(rng)?);
            }
            Some(out)
        }
    }
}

pub mod sample {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::fmt::Debug;

    pub struct Select<T> {
        options: Vec<T>,
    }

    /// `prop::sample::select(options)` — uniform choice of one element.
    #[must_use]
    pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from an empty set");
        Select { options }
    }

    impl<T: Clone + Debug> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> Option<T> {
            let i = rng.inner.gen_range(0..self.options.len());
            Some(self.options[i].clone())
        }
    }
}

// ----- macros ---------------------------------------------------------------

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        let __prop_cond: bool = $cond;
        if !__prop_cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l,
                    r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l == *r, $($fmt)*);
            }
        }
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l != *r,
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l
                );
            }
        }
    };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        let __prop_cond: bool = $cond;
        if !__prop_cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// The test-harness macro. Mirrors `proptest::proptest!`: an optional
/// `#![proptest_config(..)]` header followed by `#[test]` functions whose
/// arguments are drawn from strategies via `name in strategy` syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); ) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut accepted: u32 = 0;
            let mut rejected: u64 = 0;
            let max_rejects: u64 = 1024 + 64 * u64::from(config.cases);
            while accepted < config.cases {
                $(
                    let ::std::option::Option::Some($arg) =
                        $crate::Strategy::generate(&($strat), &mut rng)
                    else {
                        rejected += 1;
                        assert!(
                            rejected <= max_rejects,
                            "too many rejected cases in {}",
                            stringify!($name)
                        );
                        continue;
                    };
                )+
                let __case_desc = format!(
                    concat!($(stringify!($arg), " = {:?}\n"),+),
                    $(&$arg),+
                );
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                match __outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {
                        rejected += 1;
                        assert!(
                            rejected <= max_rejects,
                            "too many rejected cases in {}",
                            stringify!($name)
                        );
                    }
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case failed: {msg}\ninputs:\n{desc}",
                            msg = msg,
                            desc = __case_desc
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in -5.0f64..5.0, n in 1usize..40) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..40).contains(&n));
        }

        #[test]
        fn tuples_and_map(v in (0.0f64..1.0, 0.0f64..1.0).prop_map(|(a, b)| a + b)) {
            prop_assert!((0.0..2.0).contains(&v));
        }

        #[test]
        fn vec_lengths(xs in prop::collection::vec(0u32..10, 3..7)) {
            prop_assert!(xs.len() >= 3 && xs.len() < 7);
            for &x in &xs {
                prop_assert!(x < 10);
            }
        }

        #[test]
        fn select_picks_member(s in prop::sample::select(vec![-1.0f64, 1.0])) {
            prop_assert!(s == -1.0 || s == 1.0);
        }

        #[test]
        fn filter_and_assume(x in (-1.0f64..1.0).prop_filter("nonzero", |v| v.abs() > 1e-3)) {
            prop_assume!(x < 0.9);
            prop_assert!(x.abs() > 1e-3);
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1.0);
        }
    }

    #[test]
    fn deterministic_rng_per_name() {
        use rand::Rng;
        let mut a = crate::TestRng::from_name("some::test");
        let mut b = crate::TestRng::from_name("some::test");
        assert_eq!(a.inner.gen::<u64>(), b.inner.gen::<u64>());
    }
}
