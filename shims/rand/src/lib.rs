//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and `Rng::{gen,
//! gen_range}` over floating and integer ranges.
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — deterministic
//! and statistically solid for test/benchmark instance generation, though
//! its streams differ from upstream `rand`'s ChaCha-based `StdRng` (any
//! test that hard-codes upstream sequences would need regenerating; none
//! do).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core entropy source: everything is derived from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding, mirroring `rand::SeedableRng` (only `seed_from_u64` is used).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_in(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// xoshiro256++ behind `rand`'s `StdRng` name.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut st = seed;
            StdRng {
                s: [
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types `Rng::gen::<T>()` can produce.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 random bits.
    fn sample_standard<R: RngCore>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

/// Types with uniform range sampling.
pub trait SampleUniform: PartialOrd + Copy {
    fn sample_half_open<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self;
    fn sample_closed<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        let u = f64::sample_standard(rng); // [0, 1)
        lo + u * (hi - lo)
    }

    fn sample_closed<R: RngCore>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        // 53-bit grid over [0, 1]: the endpoint is reachable, matching the
        // inclusive-range contract.
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + u * (hi - lo)
    }
}

/// Rejection sampling of `[0, span)` without modulo bias.
fn uniform_u64_below<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - u64::MAX % span;
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            // `as u64` / `as $t` are generic over every integer width the
            // macro instantiates; `From` conversions do not exist for all
            // of them, so the infallible-cast lint is a false positive here.
            #[allow(clippy::cast_lossless)]
            fn sample_half_open<R: RngCore>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "gen_range on an empty range");
                let span = hi.abs_diff(lo) as u64;
                lo.wrapping_add(uniform_u64_below(rng, span) as $t)
            }

            #[allow(clippy::cast_lossless)]
            fn sample_closed<R: RngCore>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "gen_range on an empty range");
                let span = hi.abs_diff(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(usize, u64, u32, i64, i32);

/// Range argument forms accepted by `gen_range`.
pub trait SampleRange<T> {
    fn sample_in<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_in<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_in<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_closed(rng, lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_interval_and_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let x = rng.gen_range(-2.5f64..7.5);
            assert!((-2.5..7.5).contains(&x));
            let y = rng.gen_range(-1.0f64..=1.0);
            assert!((-1.0..=1.0).contains(&y));
            let k = rng.gen_range(3usize..10);
            assert!((3..10).contains(&k));
        }
    }

    #[test]
    fn integer_range_hits_all_values() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bool_is_balanced() {
        let mut rng = StdRng::seed_from_u64(17);
        let trues = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4500..5500).contains(&trues), "trues {trues}");
    }
}
