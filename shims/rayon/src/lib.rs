//! Offline stand-in for the subset of the `rayon` API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal data-parallelism layer with rayon's names and call
//! signatures. Work is executed on `std::thread::scope` threads: the index
//! space is split into contiguous blocks, one per worker, and results are
//! concatenated in order, so `collect()` preserves input order exactly like
//! rayon's indexed parallel iterators.
//!
//! Supported surface (everything the workspace calls):
//!
//! * `slice.par_iter()`, `slice.par_chunks(n)`, `slice.par_iter_mut()`,
//!   `slice.par_chunks_mut(n)`
//! * `range.into_par_iter()` (over `usize`), `vec.into_par_iter()`
//! * adapters `.enumerate()`, `.map(f)`; terminals `.collect::<Vec<_>>()`,
//!   `.for_each(f)`, `.sum()`
//! * `par_sort_unstable()` / `par_sort_unstable_by_key()` (sequential
//!   delegation to the std sorts — correct, just not parallel)
//! * `ThreadPoolBuilder::new().num_threads(n).build()` and
//!   `ThreadPool::install(f)`, which bounds the worker count for every
//!   parallel call made inside `f` on this thread
//! * `current_num_threads()`
//!
//! The scheduling is static (equal contiguous blocks) rather than
//! work-stealing; for the irregular workloads here that costs some load
//! balance but keeps the implementation dependency-free and auditable.

// The raw-pointer sources below are the one unsafe surface of the
// workspace; every operation inside an unsafe fn must be justified.
#![deny(unsafe_op_in_unsafe_fn)]

use std::cell::Cell;
use std::marker::PhantomData;
use std::ops::Range;
use std::thread;

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator, ParallelSlice, ParallelSliceMut};
}

fn default_threads() -> usize {
    thread::available_parallelism().map_or(1, std::num::NonZero::get)
}

thread_local! {
    static POOL_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The number of worker threads parallel calls on this thread will use.
pub fn current_num_threads() -> usize {
    POOL_OVERRIDE
        .with(std::cell::Cell::get)
        .unwrap_or_else(default_threads)
}

// --------------------------------------------------------------------------
// thread pool facade
// --------------------------------------------------------------------------

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type for [`ThreadPoolBuilder::build`]; construction cannot fail
/// here but the signature matches rayon's.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A scoped worker-count setting rather than an actual pool: workers are
/// spawned per parallel call.
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    #[must_use]
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder { num_threads: 0 }
    }

    /// `0` means "use the default" (available parallelism), as in rayon.
    #[must_use]
    pub fn num_threads(mut self, n: usize) -> ThreadPoolBuilder {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            default_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count governing every parallel
    /// call `op` makes on the current thread.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_OVERRIDE.with(|c| c.set(self.0));
            }
        }
        let _guard = Restore(POOL_OVERRIDE.with(|c| c.replace(Some(self.num_threads))));
        op()
    }

    #[must_use]
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

// --------------------------------------------------------------------------
// core trait + executor
// --------------------------------------------------------------------------

/// An indexed parallel iterator: a known length plus a producer that yields
/// the item at each index exactly once.
pub trait ParallelIterator: Sized + Sync {
    type Item: Send;

    fn par_len(&self) -> usize;

    /// Yields the item at `i`. The executor calls this exactly once per
    /// index in `0..par_len()`, possibly from different threads.
    fn produce(&self, i: usize) -> Self::Item;

    fn map<F, R>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync + Send,
        R: Send,
    {
        Map { base: self, f }
    }

    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        execute(&self, &|item| f(item));
    }

    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }

    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + Send,
    {
        execute(&self, &|item| item).into_iter().sum()
    }

    fn count(self) -> usize {
        self.par_len()
    }
}

/// Runs `f` over every index block-wise and returns results in input order.
fn execute<I, R>(it: &I, f: &(impl Fn(I::Item) -> R + Sync)) -> Vec<R>
where
    I: ParallelIterator,
    R: Send,
{
    let n = it.par_len();
    let workers = current_num_threads().min(n).max(1);
    if workers <= 1 {
        return (0..n).map(|i| f(it.produce(i))).collect();
    }
    let per = n.div_ceil(workers);
    let mut parts: Vec<Vec<R>> = thread::scope(|s| {
        // The eager collect is load-bearing: it forces every worker to be
        // spawned before the first `join`, so the chunks actually run in
        // parallel instead of serially.
        #[allow(clippy::needless_collect)]
        let handles: Vec<_> = (0..workers)
            .map(|t| {
                let lo = t * per;
                let hi = ((t + 1) * per).min(n);
                s.spawn(move || (lo..hi).map(|i| f(it.produce(i))).collect::<Vec<R>>())
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut out = Vec::with_capacity(n);
    for p in &mut parts {
        out.append(p);
    }
    out
}

/// Conversion from a parallel iterator, mirroring rayon's trait of the
/// same name. Only `Vec` is needed here.
pub trait FromParallelIterator<T: Send>: Sized {
    fn from_par_iter<I: ParallelIterator<Item = T>>(it: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(it: I) -> Vec<T> {
        execute(&it, &|item| item)
    }
}

// --------------------------------------------------------------------------
// adapters
// --------------------------------------------------------------------------

pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, F, R> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    F: Fn(I::Item) -> R + Sync + Send,
    R: Send,
{
    type Item = R;

    fn par_len(&self) -> usize {
        self.base.par_len()
    }

    fn produce(&self, i: usize) -> R {
        (self.f)(self.base.produce(i))
    }
}

pub struct Enumerate<I> {
    base: I,
}

impl<I: ParallelIterator> ParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);

    fn par_len(&self) -> usize {
        self.base.par_len()
    }

    fn produce(&self, i: usize) -> (usize, I::Item) {
        (i, self.base.produce(i))
    }
}

// --------------------------------------------------------------------------
// sources
// --------------------------------------------------------------------------

pub struct SliceIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;

    fn par_len(&self) -> usize {
        self.slice.len()
    }

    fn produce(&self, i: usize) -> &'a T {
        &self.slice[i]
    }
}

pub struct Chunks<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> ParallelIterator for Chunks<'a, T> {
    type Item = &'a [T];

    fn par_len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }

    fn produce(&self, i: usize) -> &'a [T] {
        let lo = i * self.size;
        let hi = (lo + self.size).min(self.slice.len());
        &self.slice[lo..hi]
    }
}

/// Mutable-slice source; a raw pointer lets disjoint indices be handed to
/// different threads. Soundness relies on the executor's exactly-once
/// produce contract.
pub struct SliceIterMut<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut T>,
}

// SAFETY: the source only hands out disjoint `&mut T` (one per index,
// exactly once — the executor's produce contract), so sharing the source
// across threads cannot alias; `T: Send` lets the references cross threads.
unsafe impl<T: Send> Sync for SliceIterMut<'_, T> {}
// SAFETY: same disjointness argument; moving the source is strictly weaker
// than sharing it.
unsafe impl<T: Send> Send for SliceIterMut<'_, T> {}

impl<'a, T: Send> ParallelIterator for SliceIterMut<'a, T> {
    type Item = &'a mut T;

    fn par_len(&self) -> usize {
        self.len
    }

    fn produce(&self, i: usize) -> &'a mut T {
        assert!(i < self.len);
        // SAFETY: `i < len` is asserted, the pointer spans `len` initialized
        // elements borrowed mutably for 'a, and the executor calls produce
        // exactly once per index, so no two references alias.
        unsafe { &mut *self.ptr.add(i) }
    }
}

pub struct ChunksMut<'a, T> {
    ptr: *mut T,
    len: usize,
    size: usize,
    _marker: PhantomData<&'a mut T>,
}

// SAFETY: chunks are disjoint subslices (one per index, exactly once), so
// concurrent produce calls never alias; `T: Send` permits the transfer.
unsafe impl<T: Send> Sync for ChunksMut<'_, T> {}
// SAFETY: same disjointness argument as `Sync`.
unsafe impl<T: Send> Send for ChunksMut<'_, T> {}

impl<'a, T: Send> ParallelIterator for ChunksMut<'a, T> {
    type Item = &'a mut [T];

    fn par_len(&self) -> usize {
        self.len.div_ceil(self.size)
    }

    fn produce(&self, i: usize) -> &'a mut [T] {
        let lo = i * self.size;
        let hi = (lo + self.size).min(self.len);
        assert!(lo < self.len);
        // SAFETY: `lo..hi` is in bounds (`hi` is clamped to `len`), chunk
        // ranges for distinct `i` are disjoint, and the executor produces
        // each index exactly once — no aliasing mutable slices.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(lo), hi - lo) }
    }
}

pub struct RangeIter {
    range: Range<usize>,
}

impl ParallelIterator for RangeIter {
    type Item = usize;

    fn par_len(&self) -> usize {
        self.range.end.saturating_sub(self.range.start)
    }

    fn produce(&self, i: usize) -> usize {
        self.range.start + i
    }
}

/// Owning source over a `Vec`. Elements are moved out by `ptr::read`; the
/// length is zeroed up front so dropping the source frees the buffer
/// without double-dropping elements (unconsumed elements leak only if a
/// sibling task panics).
pub struct VecIntoIter<T> {
    buf: Vec<T>,
    len: usize,
}

// SAFETY: each element is moved out at most once (exactly-once produce
// contract over distinct indices), so concurrent reads never touch the
// same slot; `T: Send` permits moving elements across threads.
unsafe impl<T: Send> Sync for VecIntoIter<T> {}

impl<T: Send> ParallelIterator for VecIntoIter<T> {
    type Item = T;

    fn par_len(&self) -> usize {
        self.len
    }

    fn produce(&self, i: usize) -> T {
        assert!(i < self.len);
        // SAFETY: `i < len` is asserted and slots `0..len` were initialized
        // before `set_len(0)`; the executor reads each index exactly once,
        // so no value is duplicated, and Vec's drop won't double-free.
        unsafe { std::ptr::read(self.buf.as_ptr().add(i)) }
    }
}

// --------------------------------------------------------------------------
// entry-point traits
// --------------------------------------------------------------------------

pub trait IntoParallelIterator {
    type Item: Send;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Iter = RangeIter;

    fn into_par_iter(self) -> RangeIter {
        RangeIter { range: self }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecIntoIter<T>;

    fn into_par_iter(mut self) -> VecIntoIter<T> {
        let len = self.len();
        // SAFETY: elements beyond len 0 stay initialized in the buffer and
        // are read exactly once by `produce`; Vec's drop then frees the
        // buffer without running element destructors.
        unsafe { self.set_len(0) };
        VecIntoIter { buf: self, len }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    type Iter = SliceIter<'a, T>;

    fn into_par_iter(self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

pub trait ParallelSlice<T: Sync> {
    fn par_iter(&self) -> SliceIter<'_, T>;
    fn par_chunks(&self, size: usize) -> Chunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> SliceIter<'_, T> {
        SliceIter { slice: self }
    }

    fn par_chunks(&self, size: usize) -> Chunks<'_, T> {
        assert!(size > 0, "chunk size must be positive");
        Chunks { slice: self, size }
    }
}

pub trait ParallelSliceMut<T: Send> {
    fn par_iter_mut(&mut self) -> SliceIterMut<'_, T>;
    fn par_chunks_mut(&mut self, size: usize) -> ChunksMut<'_, T>;
    fn par_sort_unstable(&mut self)
    where
        T: Ord;
    fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, key: F);
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> SliceIterMut<'_, T> {
        SliceIterMut {
            ptr: self.as_mut_ptr(),
            len: self.len(),
            _marker: PhantomData,
        }
    }

    fn par_chunks_mut(&mut self, size: usize) -> ChunksMut<'_, T> {
        assert!(size > 0, "chunk size must be positive");
        ChunksMut {
            ptr: self.as_mut_ptr(),
            len: self.len(),
            size,
            _marker: PhantomData,
        }
    }

    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        self.sort_unstable();
    }

    fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, key: F) {
        self.sort_unstable_by_key(key);
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn slice_enumerate_map() {
        let data = [3.0f64, 1.0, 4.0, 1.0, 5.0];
        let out: Vec<(usize, f64)> = data
            .par_iter()
            .enumerate()
            .map(|(i, &x)| (i, x + 1.0))
            .collect();
        assert_eq!(out, vec![(0, 4.0), (1, 2.0), (2, 5.0), (3, 2.0), (4, 6.0)]);
    }

    #[test]
    fn chunks_cover_everything() {
        let data: Vec<u32> = (0..103).collect();
        let sums: Vec<u32> = data.par_chunks(10).map(|c| c.iter().sum()).collect();
        assert_eq!(sums.len(), 11);
        assert_eq!(sums.iter().sum::<u32>(), data.iter().sum::<u32>());
    }

    #[test]
    fn par_iter_mut_writes_every_slot() {
        let mut data = vec![0usize; 257];
        data.par_iter_mut().enumerate().for_each(|(i, x)| *x = i);
        assert!(data.iter().enumerate().all(|(i, &x)| x == i));
    }

    #[test]
    fn par_chunks_mut_disjoint_writes() {
        let mut data = vec![0usize; 100];
        data.par_chunks_mut(7).enumerate().for_each(|(ci, chunk)| {
            for x in chunk.iter_mut() {
                *x = ci;
            }
        });
        for (i, &x) in data.iter().enumerate() {
            assert_eq!(x, i / 7);
        }
    }

    #[test]
    fn vec_into_par_iter_moves_items() {
        let v: Vec<String> = (0..50).map(|i| i.to_string()).collect();
        let out: Vec<String> = v.into_par_iter().map(|s| s + "!").collect();
        assert_eq!(out[49], "49!");
        assert_eq!(out.len(), 50);
    }

    #[test]
    fn install_bounds_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        pool.install(|| assert_eq!(current_num_threads(), 3));
        let pool1 = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let out: Vec<usize> = pool1.install(|| (0..10).into_par_iter().map(|i| i).collect());
        assert_eq!(out, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn empty_inputs() {
        let v: Vec<usize> = Vec::new().into_par_iter().map(|i: usize| i).collect();
        assert!(v.is_empty());
        let data: [f64; 0] = [];
        let out: Vec<f64> = data.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }
}
