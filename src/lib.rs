//! # Multipole-Based Treecodes with Analyzed Error Bounds
//!
//! A Rust reproduction of **Sarin, Grama & Sameh, "Analyzing the Error
//! Bounds of Multipole-Based Treecodes" (SC 1998)** — an adaptive-degree
//! Barnes–Hut treecode whose per-interaction error is equalised across
//! cluster sizes (Theorem 3 of the paper), plus every substrate the paper
//! builds on or evaluates with: spherical-harmonic multipole machinery, an
//! adaptive octree, a level-synchronised FMM, a boundary-element stack
//! (surface meshes, Gauss quadrature, single-layer operators), and a
//! restarted GMRES solver.
//!
//! This crate is a facade: it re-exports the workspace's public API under
//! one roof. See the individual crates for the full documentation:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`geometry`] | `mbt-geometry` | vectors, boxes, space-filling curves, distributions |
//! | [`multipole`] | `mbt-multipole` | expansions, translations, error bounds, degree selection |
//! | [`tree`] | `mbt-tree` | the adaptive octree |
//! | [`treecode`] | `mbt-treecode` | **the paper's contribution** — fixed & adaptive Barnes–Hut |
//! | [`engine`] | `mbt-engine` | multi-tenant query engine: plan caching, batching, admission |
//! | [`fmm`] | `mbt-fmm` | the FMM extension |
//! | [`bem`] | `mbt-bem` | boundary-element substrate |
//! | [`sim`] | `mbt-sim` | N-body dynamics (leapfrog + diagnostics) |
//! | [`solvers`] | `mbt-solvers` | GMRES and dense kernels |
//!
//! # Quick start
//!
//! ```
//! use mbt::prelude::*;
//!
//! // 10k protein-like charges (uniform density, unit magnitude)
//! let particles = uniform_cube(10_000, 1.0, ChargeModel::RandomSign { magnitude: 1.0 }, 42);
//!
//! // the paper's improved method: adaptive degree, p_min = 4, α = 0.6
//! let treecode = Treecode::new(&particles, TreecodeParams::adaptive(4, 0.6)).unwrap();
//! let result = treecode.potentials();
//!
//! // measure the simulation error against sampled exact summation
//! let err = sampled_relative_error(&particles, &result.values, 200, 0);
//! assert!(err.relative_l2 < 1e-3);
//! ```

#![forbid(unsafe_code)]

pub use mbt_bem as bem;
pub use mbt_engine as engine;
pub use mbt_fmm as fmm;
pub use mbt_geometry as geometry;
pub use mbt_multipole as multipole;
pub use mbt_sim as sim;
pub use mbt_solvers as solvers;
pub use mbt_tree as tree;
pub use mbt_treecode as treecode;

/// The most common imports in one place.
pub mod prelude {
    pub use mbt_bem::{
        quadrature::integrate_on_triangle, shapes, CapacitanceProblem, DenseSingleLayer, QuadRule,
        SingleLayerGeometry, TreecodeSingleLayer, TriMesh,
    };
    pub use mbt_engine::{
        Accuracy, CacheOutcome, DatasetId, Engine, EngineConfig, EngineError, EngineStats,
        QueryKind, QueryOutput, QueryRequest, QueryResponse,
    };
    pub use mbt_fmm::{Fmm, FmmParams};
    pub use mbt_geometry::distribution::{
        gaussian, overlapped_gaussians, plummer, uniform_ball, uniform_cube, ChargeModel,
    };
    pub use mbt_geometry::{Aabb, Particle, Vec3};
    pub use mbt_multipole::{
        kappa, theorem1_bound, theorem2_bound, DegreeSelector, DegreeWeighting, LocalExpansion,
        MultipoleExpansion,
    };
    pub use mbt_sim::{ForceModel, Simulation};
    pub use mbt_solvers::{
        cg, gmres, CgOptions, CgOutcome, DenseMatrix, GmresOptions, GmresOutcome, LinearOperator,
    };
    pub use mbt_tree::{Octree, OctreeParams};
    pub use mbt_treecode::{
        direct::{
            direct_fields, direct_potentials, direct_potentials_at, direct_potentials_softened,
        },
        relative_error, sampled_relative_error, EvalMode, EvalResult, EvalStats, RefWeight,
        SampledError, Treecode, TreecodeParams,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_work_together() {
        let ps = uniform_cube(300, 1.0, ChargeModel::RandomSign { magnitude: 1.0 }, 1);
        let tc = Treecode::new(&ps, TreecodeParams::fixed(6, 0.5)).unwrap();
        let approx = tc.potentials().values;
        let exact = direct_potentials(&ps);
        assert!(relative_error(&approx, &exact) < 1e-4);
    }
}
