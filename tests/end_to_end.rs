//! Cross-crate integration tests: the full pipelines a user of the
//! workspace would run, exercised end to end through the `mbt` facade.

use mbt::prelude::*;

fn rel_err_vec(a: &[f64], b: &[f64]) -> f64 {
    relative_error(a, b)
}

#[test]
fn treecode_vs_direct_on_every_distribution() {
    let charges = ChargeModel::RandomSign { magnitude: 1.0 };
    let instances: Vec<(&str, Vec<Particle>)> = vec![
        ("uniform", uniform_cube(1500, 1.0, charges, 1)),
        ("ball", uniform_ball(1500, 1.0, charges, 2)),
        ("gaussian", gaussian(1500, Vec3::ZERO, 0.5, charges, 3)),
        (
            "overlapped",
            overlapped_gaussians(1500, 3, 2.0, 0.4, charges, 4),
        ),
        ("plummer", plummer(1500, 1.0, 100.0, 5)),
    ];
    for (name, ps) in instances {
        let exact = direct_potentials(&ps);
        let tc = Treecode::new(&ps, TreecodeParams::fixed(8, 0.5)).unwrap();
        let approx = tc.potentials();
        let err = rel_err_vec(&approx.values, &exact);
        assert!(err < 1e-4, "{name}: treecode error {err} too large");
    }
}

#[test]
fn adaptive_accuracy_dominates_fixed_across_alpha() {
    let ps = uniform_cube(3000, 1.0, ChargeModel::UnitPositive { magnitude: 1.0 }, 9);
    let exact = direct_potentials(&ps);
    for alpha in [0.5, 0.7, 0.9] {
        let fixed = Treecode::new(&ps, TreecodeParams::fixed(3, alpha)).unwrap();
        let adaptive = Treecode::new(&ps, TreecodeParams::adaptive(3, alpha)).unwrap();
        let e_fixed = rel_err_vec(&fixed.potentials().values, &exact);
        let e_adaptive = rel_err_vec(&adaptive.potentials().values, &exact);
        assert!(
            e_adaptive <= e_fixed,
            "alpha {alpha}: adaptive {e_adaptive} vs fixed {e_fixed}"
        );
    }
}

#[test]
fn treecode_and_fmm_agree() {
    let ps = gaussian(
        2500,
        Vec3::ZERO,
        0.6,
        ChargeModel::RandomSign { magnitude: 1.0 },
        17,
    );
    let exact = direct_potentials(&ps);
    let tc = Treecode::new(&ps, TreecodeParams::fixed(8, 0.4)).unwrap();
    let fmm = Fmm::new(&ps, FmmParams::fixed(8).with_levels(3)).unwrap();
    let e_tc = rel_err_vec(&tc.potentials().values, &exact);
    let e_fmm = rel_err_vec(&fmm.potentials().values, &exact);
    assert!(e_tc < 1e-4, "treecode error {e_tc}");
    assert!(e_fmm < 1e-4, "fmm error {e_fmm}");
}

#[test]
fn fields_are_negative_gradients_of_potential() {
    // numerically verify ∇Φ by comparing the treecode gradient at external
    // probes with finite differences of the treecode potential
    let ps = uniform_cube(800, 1.0, ChargeModel::RandomSign { magnitude: 1.0 }, 21);
    let tc = Treecode::new(&ps, TreecodeParams::fixed(8, 0.4)).unwrap();
    let probes = [Vec3::new(2.0, 1.0, 0.5), Vec3::new(-1.5, 2.0, 1.0)];
    let fields = tc.fields_at(&probes);
    let h = 1e-5;
    for (i, &x) in probes.iter().enumerate() {
        let fd = Vec3::new(
            (tc.potential_at(x + Vec3::X * h) - tc.potential_at(x - Vec3::X * h)) / (2.0 * h),
            (tc.potential_at(x + Vec3::Y * h) - tc.potential_at(x - Vec3::Y * h)) / (2.0 * h),
            (tc.potential_at(x + Vec3::Z * h) - tc.potential_at(x - Vec3::Z * h)) / (2.0 * h),
        );
        let (_, grad) = fields.values[i];
        assert!(
            grad.distance(fd) < 1e-4 * (1.0 + grad.norm()),
            "gradient mismatch at probe {i}: {grad:?} vs {fd:?}"
        );
    }
}

#[test]
fn bem_pipeline_sphere_capacitance() {
    let geometry = SingleLayerGeometry::new(shapes::icosphere(2, 1.5), QuadRule::SixPoint);
    let operator = TreecodeSingleLayer::new(geometry.clone(), TreecodeParams::fixed(7, 0.5));
    let sol = CapacitanceProblem::new(&operator, &geometry).solve(&GmresOptions {
        restart: 10,
        tol: 1e-8,
        max_iters: 200,
        preconditioner: None,
    });
    assert_eq!(sol.gmres.outcome, GmresOutcome::Converged);
    // C = R = 1.5 in Gaussian units
    assert!(
        (sol.capacitance - 1.5).abs() < 0.05,
        "capacitance {} should be ≈ 1.5",
        sol.capacitance
    );
}

#[test]
fn bem_treecode_matvec_matches_dense_on_gripper() {
    let geometry = SingleLayerGeometry::new(shapes::gripper(5), QuadRule::ThreePoint);
    let dense = DenseSingleLayer::assemble(geometry.clone());
    let tcode = TreecodeSingleLayer::new(geometry.clone(), TreecodeParams::fixed(9, 0.4));
    let x: Vec<f64> = (0..geometry.dim())
        .map(|i| (i as f64 * 0.03).cos())
        .collect();
    let yd = dense.apply_vec(&x);
    let yt = tcode.apply_vec(&x);
    let err = relative_error(&yt, &yd);
    assert!(err < 1e-4, "treecode matvec off by {err}");
}

#[test]
fn theorem1_bound_holds_through_the_whole_treecode() {
    // For a single well-separated cluster, the end-to-end treecode error
    // must respect the analytic bound of the expansion it used.
    let cluster = gaussian(
        500,
        Vec3::ZERO,
        0.2,
        ChargeModel::UnitPositive { magnitude: 1.0 },
        33,
    );
    let tc = Treecode::new(&cluster, TreecodeParams::fixed(5, 0.9)).unwrap();
    let probe = Vec3::new(5.0, 0.0, 0.0);
    let approx = tc.potentials_at(&[probe]).values[0];
    let exact = direct_potentials_at(&cluster, &[probe])[0];
    // conservative bound: whole system as one cluster
    let a: f64 = cluster
        .iter()
        .map(|p| p.position.norm())
        .fold(0.0, f64::max);
    let bound = theorem1_bound(cluster.len() as f64, a, 5.0 - 1e-9, 5);
    assert!(
        (approx - exact).abs() <= bound,
        "error {} exceeds Theorem 1 bound {bound}",
        (approx - exact).abs()
    );
}

#[test]
fn original_order_is_preserved_everywhere() {
    // shuffle-sensitive check: values come back in the caller's order
    let mut ps = uniform_cube(500, 1.0, ChargeModel::RandomSign { magnitude: 1.0 }, 41);
    // tag each particle with a unique charge so identity is visible
    for (i, p) in ps.iter_mut().enumerate() {
        p.charge = 1.0 + i as f64 * 1e-6;
    }
    let tc = Treecode::new(&ps, TreecodeParams::fixed(6, 0.5)).unwrap();
    let tc_result = tc.potentials();
    let exact = direct_potentials(&ps);
    for (i, (v, e)) in tc_result.values.iter().zip(&exact).enumerate() {
        assert!(
            (v - e).abs() < 1e-3 * e.abs().max(1.0),
            "index {i} misaligned"
        );
    }
}

#[test]
fn gmres_with_treecode_operator_matches_dense_solution() {
    let geometry = SingleLayerGeometry::new(shapes::icosphere(1, 1.0), QuadRule::SixPoint);
    let dense = DenseSingleLayer::assemble(geometry.clone());
    let tcode = TreecodeSingleLayer::new(geometry.clone(), TreecodeParams::fixed(9, 0.4));
    let b = vec![1.0; geometry.dim()];
    let opts = GmresOptions {
        restart: 10,
        tol: 1e-10,
        max_iters: 300,
        preconditioner: None,
    };
    let xd = gmres(&dense, &b, &opts).x;
    let xt = gmres(&tcode, &b, &opts).x;
    let err = relative_error(&xt, &xd);
    assert!(err < 1e-3, "solutions differ by {err}");
}
