//! Cross-check of every evaluation strategy the workspace offers: on one
//! instance, all five far-field strategies must agree with the exact sum
//! (and hence with each other) within their respective accuracy regimes.

use mbt::prelude::*;

#[test]
fn all_methods_agree_on_one_instance() {
    let ps = uniform_cube(3000, 1.0, ChargeModel::RandomSign { magnitude: 1.0 }, 99);
    let exact = direct_potentials(&ps);

    let mut results: Vec<(&str, Vec<f64>, f64)> = Vec::new();

    // 1. single-tree, fixed degree
    let tc_fixed = Treecode::new(&ps, TreecodeParams::fixed(8, 0.5)).unwrap();
    results.push(("single fixed p=8", tc_fixed.potentials().values, 1e-4));

    // 2. single-tree, adaptive degree
    let tc_adaptive = Treecode::new(&ps, TreecodeParams::adaptive(8, 0.5)).unwrap();
    results.push(("single adaptive", tc_adaptive.potentials().values, 1e-4));

    // 3. tolerance-driven per-interaction degrees
    let tc_tol = Treecode::new(&ps, TreecodeParams::tolerance(1e-6, 0.5)).unwrap();
    results.push(("tolerance 1e-6", tc_tol.potentials().values, 1e-3));

    // 4. dual-tree (cluster–cluster)
    results.push(("dual-tree p=8", tc_fixed.potentials_dual().values, 1e-3));

    // 5. FMM
    let fmm = Fmm::new(&ps, FmmParams::fixed(8).with_levels(3)).unwrap();
    results.push(("fmm p=8", fmm.potentials().values, 1e-4));

    for (name, values, tol) in &results {
        let err = relative_error(values, &exact);
        assert!(err < *tol, "{name}: error {err} exceeds {tol}");
    }

    // pairwise agreement (transitively implied, asserted explicitly for
    // diagnosability)
    for i in 0..results.len() {
        for j in i + 1..results.len() {
            let e = relative_error(&results[i].1, &results[j].1);
            let budget = results[i].2 + results[j].2;
            assert!(
                e < budget,
                "{} vs {}: {e} exceeds {budget}",
                results[i].0,
                results[j].0
            );
        }
    }
}

#[test]
fn strategies_rank_by_work_as_designed() {
    let ps = uniform_cube(8000, 1.0, ChargeModel::UnitPositive { magnitude: 1.0 }, 7);
    let tc = Treecode::new(&ps, TreecodeParams::fixed(4, 0.6)).unwrap();
    let single = tc.potentials();
    let dual = tc.potentials_dual();
    // dual amortises the far field: far fewer expansion interactions
    assert!(dual.stats.pc_interactions < single.stats.pc_interactions);
    // identical near fields (same tree, same MAC family) — dual's block
    // near field covers at least the single-tree direct pairs
    assert!(dual.stats.direct_pairs >= single.stats.direct_pairs / 4);
}
