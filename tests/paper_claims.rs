//! Tests that pin the paper's quantitative claims, scaled to CI budgets:
//!
//! * Theorem 2 — per-interaction error linear in cluster charge,
//! * Lemma 1 — the distance sandwich of admitted interactions,
//! * Lemma 2 — bounded same-size interactions per target,
//! * Theorem 3 — adaptive equalisation beats fixed accuracy,
//! * Theorem 4 — adaptive cost within 7/3 of fixed,
//! * the `O(log n)` vs `O(n)`-flavoured aggregate-error separation.

use mbt::prelude::*;
use mbt::treecode::mac::{lemma1_distance_bounds, lemma2_interaction_bound, mac, MacDecision};

#[test]
fn lemma1_sandwich_observed_in_real_runs() {
    // run a treecode traversal manually and check each accepted
    // interaction's distance lies in the Lemma-1 window (relative to the
    // accepted box's edge), given that its parent was rejected.
    let ps = uniform_cube(4000, 1.0, ChargeModel::UnitPositive { magnitude: 1.0 }, 3);
    let alpha = 0.6;
    let tc = Treecode::new(&ps, TreecodeParams::fixed(3, alpha)).unwrap();
    let tree = tc.tree();
    let target = Vec3::new(0.11, -0.23, 0.05);

    let mut stack = vec![tree.root()];
    let mut checked = 0;
    while let Some(id) = stack.pop() {
        let node = tree.node(id);
        match mac(node, target, alpha) {
            MacDecision::Accept => {
                let r = target.distance(node.center);
                let (lo, hi) = lemma1_distance_bounds(node.edge(), alpha);
                assert!(r >= lo * 0.999, "below Lemma-1 lower bound");
                // the upper bound only applies when the parent was
                // rejected, which holds for every accepted non-root node
                // reached through this traversal
                if node.parent != mbt::tree::NO_NODE {
                    // measure against the parent's center (the bound's
                    // derivation uses the parent geometry)
                    let parent = tree.node(node.parent);
                    let rp = target.distance(parent.center);
                    let (_, hi_p) = lemma1_distance_bounds(parent.edge(), alpha);
                    assert!(
                        rp <= hi_p * 1.001,
                        "above Lemma-1 upper bound: {rp} vs {hi_p}"
                    );
                    let _ = hi;
                }
                checked += 1;
            }
            MacDecision::Open => {
                if !node.is_leaf {
                    stack.extend(node.child_ids());
                }
            }
        }
    }
    assert!(
        checked > 10,
        "too few accepted interactions to be meaningful"
    );
}

#[test]
fn lemma2_interactions_per_size_bounded() {
    // count accepted interactions per box size for a single target and
    // compare with the Lemma-2 constant
    let ps = uniform_cube(8000, 1.0, ChargeModel::UnitPositive { magnitude: 1.0 }, 5);
    let alpha = 0.6;
    let tc = Treecode::new(&ps, TreecodeParams::fixed(3, alpha).with_leaf_capacity(8)).unwrap();
    let tree = tc.tree();
    let target = Vec3::new(0.0, 0.0, 0.0);
    let mut per_level = std::collections::HashMap::<u16, usize>::new();
    let mut stack = vec![tree.root()];
    while let Some(id) = stack.pop() {
        let node = tree.node(id);
        match mac(node, target, alpha) {
            MacDecision::Accept => *per_level.entry(node.level).or_default() += 1,
            MacDecision::Open => {
                if !node.is_leaf {
                    stack.extend(node.child_ids());
                }
            }
        }
    }
    let k_bound = lemma2_interaction_bound(alpha);
    for (level, count) in per_level {
        assert!(
            (count as f64) <= k_bound,
            "level {level}: {count} interactions exceed Lemma-2 bound {k_bound}"
        );
    }
}

#[test]
fn theorem2_error_scales_linearly_with_charge() {
    // same geometry, charges scaled by s: observed treecode error must
    // scale by exactly s (linearity of the whole pipeline)
    let base = uniform_cube(2000, 1.0, ChargeModel::UnitPositive { magnitude: 1.0 }, 7);
    let exact_base = direct_potentials(&base);
    let tc = Treecode::new(&base, TreecodeParams::fixed(3, 0.8)).unwrap();
    let err_base: Vec<f64> = tc
        .potentials()
        .values
        .iter()
        .zip(&exact_base)
        .map(|(a, e)| a - e)
        .collect();

    let scaled: Vec<Particle> = base
        .iter()
        .map(|p| Particle::new(p.position, p.charge * 10.0))
        .collect();
    let exact_scaled = direct_potentials(&scaled);
    let tc10 = Treecode::new(&scaled, TreecodeParams::fixed(3, 0.8)).unwrap();
    let err_scaled: Vec<f64> = tc10
        .potentials()
        .values
        .iter()
        .zip(&exact_scaled)
        .map(|(a, e)| a - e)
        .collect();

    let n0 = err_base.iter().map(|e| e * e).sum::<f64>().sqrt();
    let n10 = err_scaled.iter().map(|e| e * e).sum::<f64>().sqrt();
    assert!(
        (n10 / n0 - 10.0).abs() < 0.5,
        "error should scale 10x with charge, got {}",
        n10 / n0
    );
}

#[test]
fn theorem4_cost_ratio_under_seven_thirds() {
    for n in [4_000usize, 16_000] {
        let ps = uniform_cube(
            n,
            1.0,
            ChargeModel::UnitPositive { magnitude: 1.0 },
            n as u64,
        );
        let orig = Treecode::new(&ps, TreecodeParams::fixed(4, 0.7)).unwrap();
        let probe = Treecode::new(&ps, TreecodeParams::adaptive(4, 0.7)).unwrap();
        let adaptive = Treecode::new(
            &ps,
            TreecodeParams::adaptive(4, 0.7)
                .with_ref_weight(RefWeight::Explicit(probe.ref_weight() * 8.0)),
        )
        .unwrap();
        let t_orig = orig.potentials().stats.terms;
        let t_new = adaptive.potentials().stats.terms;
        let ratio = t_new as f64 / t_orig as f64;
        assert!(
            ratio < 7.0 / 3.0,
            "n = {n}: Terms(new)/Terms(orig) = {ratio} exceeds 7/3"
        );
        assert!(
            ratio >= 1.0,
            "adaptive cannot be cheaper than fixed at the same p_min"
        );
    }
}

#[test]
fn improved_method_gap_widens_with_n() {
    // the qualitative content of Table 1 / Figure 2: the error advantage
    // of the improved method grows with system size
    let mut gains = Vec::new();
    for n in [4_000usize, 32_000] {
        let ps = uniform_cube(
            n,
            1.0,
            ChargeModel::UnitPositive { magnitude: 1.0 },
            42 + n as u64,
        );
        let orig = Treecode::new(&ps, TreecodeParams::fixed(4, 0.7)).unwrap();
        let new = Treecode::new(&ps, TreecodeParams::adaptive(4, 0.7)).unwrap();
        let e_orig = sampled_relative_error(&ps, &orig.potentials().values, 300, 1).relative_l2;
        let e_new = sampled_relative_error(&ps, &new.potentials().values, 300, 1).relative_l2;
        gains.push(e_orig / e_new);
    }
    assert!(gains[0] > 1.0, "improved must win already at small n");
    assert!(gains[1] > gains[0], "gain should grow with n: {gains:?}");
}

#[test]
fn interactions_per_target_grow_logarithmically() {
    // Lemma 2 + height O(log n): interactions per target ~ K·log n
    let mut per_target = Vec::new();
    for n in [4_000usize, 32_000] {
        let ps = uniform_cube(n, 1.0, ChargeModel::UnitPositive { magnitude: 1.0 }, 1);
        let tc = Treecode::new(&ps, TreecodeParams::fixed(3, 0.6).with_leaf_capacity(8)).unwrap();
        let r = tc.potentials();
        per_target.push(r.stats.interactions_per_target());
    }
    // 8x the particles = 1 extra octree level: expect an additive, not
    // multiplicative, increase
    let growth = per_target[1] / per_target[0];
    assert!(
        growth < 2.0,
        "interactions/target grew {growth}x over 8x n — not logarithmic"
    );
    assert!(
        per_target[1] > per_target[0],
        "deeper trees add interactions"
    );
}
