//! Dynamic contract checks, compiled only under the `validate` feature
//! (`cargo test --features validate`). See DESIGN.md §8.
//!
//! Two layers are exercised:
//!
//! 1. the analytical contracts of the paper — Theorem 1/2 error bounds
//!    must dominate the *measured* error of every admitted
//!    particle–cluster interaction,
//! 2. the structural contracts wired into construction itself (Morton
//!    sortedness, arena span disjointness/coverage), which fire inside
//!    `Octree::build` / `Treecode::new` whenever the feature is on —
//!    the randomized builds below would panic on any violation.
#![cfg(feature = "validate")]

use mbt::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random charges inside a sphere of radius `a` centred on the origin.
fn cluster(rng: &mut StdRng, n: usize, a: f64) -> Vec<Particle> {
    (0..n)
        .map(|_| {
            // rejection-sample the ball
            let v = loop {
                let v = Vec3::new(
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                );
                if v.norm() <= 1.0 {
                    break v;
                }
            };
            Particle {
                position: v * a,
                charge: rng.gen_range(-1.0..1.0),
            }
        })
        .collect()
}

/// Theorem 1: for any cluster inside a sphere of radius `a` and any target
/// at distance `r > a`, the degree-`p` multipole approximation satisfies
/// `|Φ − Φ_p| ≤ A/(r−a) · (a/r)^{p+1}`. The measured error of randomized
/// configurations must stay below the bound at every degree.
#[test]
fn theorem1_bound_dominates_measured_error() {
    let mut rng = StdRng::seed_from_u64(20260806);
    for trial in 0..40 {
        let a = rng.gen_range(0.2..1.5);
        let n = rng.gen_range(1..40);
        let particles = cluster(&mut rng, n, a);
        let abs_charge: f64 = particles.iter().map(|p| p.charge.abs()).sum();
        // target strictly outside the bounding sphere
        let r = a * rng.gen_range(1.3..4.0);
        let dir = Vec3::new(
            rng.gen_range(-1.0..1.0),
            rng.gen_range(-1.0..1.0),
            rng.gen_range(-1.0..1.0),
        )
        .normalized();
        let target = dir * r;
        let exact: f64 = particles
            .iter()
            .map(|p| p.charge / p.position.distance(target))
            .sum();
        for p in 0..=12usize {
            let exp = MultipoleExpansion::from_particles(Vec3::ZERO, p, &particles);
            let approx = exp.potential_at(target);
            let bound = theorem1_bound(abs_charge, a, r, p);
            // small absolute slack for floating-point round-off when the
            // truncation error itself is at round-off level
            assert!(
                (approx - exact).abs() <= bound + 1e-12 * (1.0 + exact.abs()),
                "trial {trial}, degree {p}: measured error {} exceeds Theorem-1 bound {bound}",
                (approx - exact).abs(),
            );
        }
    }
}

/// Theorem 2 restates Theorem 1 for a cluster in a cube of edge `d`
/// (`a = d·√3/2`); the bound must dominate the measured error of clusters
/// drawn inside a cube.
#[test]
fn theorem2_bound_dominates_cube_clusters() {
    let mut rng = StdRng::seed_from_u64(7);
    for trial in 0..25 {
        let d = rng.gen_range(0.3..2.0);
        let particles: Vec<Particle> = (0..rng.gen_range(2..30))
            .map(|_| Particle {
                position: Vec3::new(
                    rng.gen_range(-0.5..0.5) * d,
                    rng.gen_range(-0.5..0.5) * d,
                    rng.gen_range(-0.5..0.5) * d,
                ),
                charge: rng.gen_range(-1.0..1.0),
            })
            .collect();
        let abs_charge: f64 = particles.iter().map(|p| p.charge.abs()).sum();
        let r = d * rng.gen_range(1.2..3.0); // admitted by any α ≥ d/r
        let target = Vec3::new(0.0, 0.0, r);
        let exact: f64 = particles
            .iter()
            .map(|p| p.charge / p.position.distance(target))
            .sum();
        for p in [2usize, 5, 9] {
            let exp = MultipoleExpansion::from_particles(Vec3::ZERO, p, &particles);
            let err = (exp.potential_at(target) - exact).abs();
            let bound = theorem2_bound(abs_charge, d, r, p);
            assert!(
                err <= bound + 1e-12 * (1.0 + exact.abs()),
                "trial {trial}, degree {p}: error {err} exceeds Theorem-2 bound {bound}"
            );
        }
    }
}

/// Randomized octrees: `Octree::build` runs its own contract checks under
/// this feature; re-running them from outside and checking the public
/// permutation view guards the plumbing end to end.
#[test]
fn randomized_trees_uphold_structural_contracts() {
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..8 {
        let n = rng.gen_range(1..2000);
        let seed = rng.gen_range(0..u64::MAX);
        let particles = uniform_cube(n, 1.0, ChargeModel::RandomSign { magnitude: 1.0 }, seed);
        let cap = rng.gen_range(1..32);
        let tree = Octree::build(&particles, OctreeParams { leaf_capacity: cap }).unwrap();
        tree.validate_contracts();
        // the permutation maps sorted storage back onto the input order
        let perm = tree.perm();
        assert_eq!(perm.len(), particles.len());
        for (sorted_idx, &orig) in perm.iter().enumerate() {
            assert_eq!(
                tree.particles()[sorted_idx].position,
                particles[orig].position
            );
        }
    }
}

/// Randomized treecode builds: the arena contract checks (span
/// disjointness, exact coverage, triangular lengths) fire inside
/// `Treecode::new` under this feature, for both the fixed- and
/// adaptive-degree paths.
#[test]
fn randomized_treecodes_pass_arena_contracts() {
    let mut rng = StdRng::seed_from_u64(4242);
    for _ in 0..6 {
        let n = rng.gen_range(16..1500);
        let seed = rng.gen_range(0..u64::MAX);
        let particles = uniform_ball(n, 1.0, ChargeModel::RandomSign { magnitude: 1.0 }, seed);
        let params = if rng.gen_bool(0.5) {
            TreecodeParams::fixed(rng.gen_range(1..8), 0.7)
        } else {
            TreecodeParams::adaptive(rng.gen_range(1..5), 0.7)
        };
        let tc = Treecode::new(&particles, params.with_leaf_capacity(rng.gen_range(1..24)))
            .expect("treecode build");
        // spot-check the evaluation still works on top of the checked arena
        let res = tc.potentials();
        assert_eq!(res.values.len(), n);
        assert!(res.values.iter().all(|v| v.is_finite()));
    }
}
